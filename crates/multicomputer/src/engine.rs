//! The SPMD engine: one thread per simulated processor, point-to-point
//! message channels, and a per-processor clock.
//!
//! # Timing modes
//!
//! In **virtual mode** every cost is *charged*: [`Env::charge_ops`] advances
//! the local clock by `n × T_Operation`, and [`Env::send`] advances it by
//! `T_Startup + elems × T_Data`. A message records the sender's clock after
//! the charge as its arrival time; [`Env::recv`] synchronises the
//! receiver's clock to `max(local, arrival)` and books the jump as
//! [`Phase::Wait`]. Because the arrival times depend only on message
//! causality, the resulting ledgers are fully deterministic no matter how
//! the host schedules the threads.
//!
//! In **wall-clock mode** the clock is the host's monotonic clock; charges
//! are no-ops (real work takes real time) and [`Env::phase`] measures the
//! elapsed wall time of its body. An optional per-element wire delay can be
//! injected into `send` to emulate an interconnect slower than shared
//! memory.
//!
//! # Reliable delivery and fault injection
//!
//! When a [`FaultPlan`] is installed ([`Multicomputer::with_faults`]), all
//! traffic runs through a reliable-delivery layer:
//!
//! * every frame carries the CRC32 of its payload; the receiver rejects
//!   frames whose payload fails the check and emits a **nack** on a
//!   dedicated control channel (good frames are **acked**);
//! * a dropped frame elicits nothing — the sender's ARQ timeout fires;
//! * the sender retransmits after a timeout that backs off exponentially
//!   ([`RetryPolicy`]), up to a retry budget, charging each timeout and
//!   retransmission to [`Phase::Retry`] in virtual time;
//! * exhausting the budget surfaces as [`CommError::RetriesExhausted`] on
//!   *both* ends (a poison frame unblocks the receiver), never a deadlock.
//!
//! Fault decisions are pure hashes of `(seed, src, dst, seq, attempt)`
//! (see [`crate::fault`]), and the sender — which shares the plan — charges
//! the same timeout the ack round-trip would have established. The
//! simulation therefore stays deterministic in virtual mode: same plan,
//! same ledgers, bit for bit. Faulted frames are still physically moved
//! across the channel (tagged with their injected fate) so the blocking
//! receiver always has something to reject; a `Drop` tag means "this frame
//! never arrived" and is skipped without cost.
//!
//! The nonblocking path carries the same guarantees: under a plan,
//! [`Env::isend`] runs the whole ARQ schedule *on the NIC timeline* —
//! doomed attempts, backoff timeouts and retransmissions are scheduled as
//! labelled spans in [`crate::progress::NicProgress`] without advancing
//! the CPU clock, and [`Env::wait_all`] books whatever slice of the drain
//! was recovery work to [`Phase::Retry`]. Recovery that hides behind
//! compute costs nothing, exactly like hidden first attempts.
//!
//! # Mid-run rank death and the watchdog
//!
//! A plan may schedule a rank to die at a virtual-time instant
//! ([`FaultPlan::with_death_at`], CLI `die=R:T`). In virtual mode every
//! send checks the frame's would-be arrival against the destination's
//! death time: a frame that cannot land in time fails with
//! [`CommError::PeerDead`] at the sender, and a *death notice* frame is
//! pushed so the dying receiver observes its own death at the matching
//! point in its stream — sender detection and receiver observation always
//! agree, keeping recovery protocols deterministic.
//!
//! Structurally the engine cannot hang on an early error: when a rank's
//! closure returns, its channel senders drop and every peer blocked in
//! `recv` gets [`CommError::Disconnected`]. [`Multicomputer::with_watchdog`]
//! adds a belt-and-braces wall-clock bound for chaos harnesses: a `recv`
//! that sees no frame within the limit returns [`CommError::Stalled`]
//! instead of blocking forever. It only fires on protocol bugs.
//!
//! Without a plan the fast path is exactly the original engine: no CRC
//! work, no acks, identical charges — the paper's tables are unaffected.

use crate::exec::{self, EngineKind, EventFabric};
use crate::fault::{FaultKind, FaultPlan, RetryPolicy};
use crate::model::MachineModel;
use crate::pack::{PackArena, PackBuffer};
use crate::progress::NicProgress;
use crate::time::VirtualTime;
use crate::timing::{Phase, PhaseLedger, WireStats};
use crate::topology::Topology;
use crate::trace::{RankTrace, TraceSink, Tracer};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration;
// lint: allow(D001) — WallClock mode measures real elapsed time by design
use std::time::Instant;

/// How the machine keeps time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingMode {
    /// Deterministic virtual-time accounting under an α-β model.
    Virtual(MachineModel),
    /// Real wall-clock measurement, with an optional injected wire cost of
    /// `wire_ns_per_elem` nanoseconds per transmitted element (busy-wait at
    /// the sender, emulating the wire occupancy of a real interconnect).
    WallClock {
        /// Injected per-element send cost in nanoseconds (0 = pure shared
        /// memory).
        wire_ns_per_elem: u64,
        /// Injected per-message startup cost in nanoseconds.
        wire_ns_startup: u64,
    },
}

impl TimingMode {
    /// Wall-clock mode with no injected wire cost.
    pub fn wall() -> Self {
        TimingMode::WallClock {
            wire_ns_per_elem: 0,
            wire_ns_startup: 0,
        }
    }
}

/// A communication failure surfaced by the engine instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The reliable-delivery layer ran out of retries on one message.
    RetriesExhausted {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Per-link sequence number of the doomed message.
        seq: u64,
        /// Attempts made (initial transmission + retries).
        attempts: u32,
    },
    /// The peer rank is declared dead by the fault plan.
    PeerDead {
        /// The dead rank.
        rank: usize,
    },
    /// The peer's thread exited early and its channel is closed.
    Disconnected {
        /// The vanished peer.
        peer: usize,
    },
    /// The engine watchdog fired: no frame arrived from the peer within
    /// the wall-clock bound set by [`Multicomputer::with_watchdog`]. Only
    /// reachable through a protocol bug — a healthy run, however slow its
    /// virtual timeline, keeps frames flowing.
    Stalled {
        /// The rank being waited on.
        src: usize,
        /// The wall-clock bound that elapsed, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RetriesExhausted {
                src,
                dst,
                seq,
                attempts,
            } => write!(
                f,
                "message {seq} from rank {src} to rank {dst} undelivered after {attempts} attempts"
            ),
            CommError::PeerDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Disconnected { peer } => {
                write!(f, "rank {peer} hung up: peer processor exited early")
            }
            CommError::Stalled { src, waited_ms } => write!(
                f,
                "watchdog: no frame from rank {src} within {waited_ms} ms (protocol stall)"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// A message delivered to scheme code: the payload plus provenance.
#[derive(Debug, Clone)]
pub struct Message {
    /// Which rank sent this message.
    pub src: usize,
    /// The packed payload.
    pub payload: PackBuffer,
    /// Sender-side clock at the moment transmission completed (virtual
    /// mode only; `ZERO` in wall-clock mode).
    pub arrival: VirtualTime,
}

/// A posted nonblocking receive (see [`Env::irecv`]). Redeem it with
/// [`Env::wait_recv`]; handles for the same source complete in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an irecv completes nothing until passed to wait_recv"]
pub struct RecvHandle {
    src: usize,
}

impl RecvHandle {
    /// The source rank this receive was posted against.
    pub fn src(&self) -> usize {
        self.src
    }
}

/// What actually travels on a link: a framed payload with the metadata
/// the reliable-delivery layer needs. Crate-visible so the event-loop
/// fabric ([`crate::exec`]) can carry the same frames as the channels.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    seq: u64,
    src: usize,
    payload: PackBuffer,
    arrival: VirtualTime,
    /// CRC32 of the payload *as sent* (before any injected corruption), so
    /// the receiver can detect a corrupted frame.
    crc: u32,
    /// The fate the fault plan decided for this frame (None = clean).
    injected: Option<FaultKind>,
    /// True on the poison frame a sender emits after exhausting retries.
    failed: bool,
    /// A death notice: the rank that died (possibly the sender itself),
    /// pushed so the receiver observes the death at the matching point in
    /// its frame stream. Consuming one yields [`CommError::PeerDead`].
    dead: Option<usize>,
}

/// Receiver → sender control frame of the ack/nack protocol.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AckMsg {
    seq: u64,
    ok: bool,
}

/// The transport seam between rank logic and the rest of the machine:
/// per-peer crossbeam channels when each rank owns an OS thread, or the
/// shared mailbox fabric when all ranks are tasks on the event loop. All
/// charging, ARQ, fault and trace logic lives in [`Env`] *above* this
/// enum, which is what makes the two engines bit-identical.
enum Links {
    Threaded {
        senders: Vec<Sender<Frame>>,
        receivers: Vec<Receiver<Frame>>,
        ack_senders: Vec<Sender<AckMsg>>,
        ack_receivers: Vec<Receiver<AckMsg>>,
    },
    Event(Rc<EventFabric>),
}

/// A simulated distributed-memory machine with `p` processors.
pub struct Multicomputer {
    nprocs: usize,
    mode: TimingMode,
    topology: Topology,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    watchdog: Option<Duration>,
    /// Forced execution backend for task runs (`None` = auto-select by
    /// machine size; see [`Multicomputer::task_engine`]).
    engine: Option<EngineKind>,
    /// One buffer-reuse arena per rank, persisting across `run_*` calls so
    /// repeated distributions stop reallocating their send buffers.
    arenas: Vec<Arc<PackArena>>,
    /// Where completed rank traces go; `None` (the default) and disabled
    /// sinks allocate no tracer at all.
    sink: Option<Arc<dyn TraceSink>>,
}

impl Multicomputer {
    /// A machine whose time is simulated under `model` (fully connected
    /// interconnect, as in the paper).
    pub fn virtual_machine(nprocs: usize, model: MachineModel) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::Virtual(model), Topology::FullyConnected)
    }

    /// A virtual machine on an explicit interconnect [`Topology`]; message
    /// costs become `T_Startup + hops·T_Hop + elems·T_Data`.
    pub fn virtual_with_topology(nprocs: usize, model: MachineModel, topology: Topology) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::Virtual(model), topology)
    }

    /// A machine measured with the host's wall clock.
    pub fn wall_clock(nprocs: usize) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::wall(), Topology::FullyConnected)
    }

    /// A machine with an explicit [`TimingMode`].
    pub fn with_mode(nprocs: usize, mode: TimingMode) -> Self {
        Multicomputer::with_topology(nprocs, mode, Topology::FullyConnected)
    }

    /// The fully general constructor.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero or the topology's grid does not match.
    pub fn with_topology(nprocs: usize, mode: TimingMode, topology: Topology) -> Self {
        assert!(nprocs > 0, "a multicomputer needs at least one processor");
        // Validate grid topologies eagerly (hops would panic lazily).
        if let Topology::Mesh2D { pr, pc } | Topology::Torus2D { pr, pc } = topology {
            assert_eq!(
                pr * pc,
                nprocs,
                "topology grid {pr}x{pc} != {nprocs} processors"
            );
        }
        assert!(
            nprocs <= EngineKind::EventLoop.max_procs(),
            "{} processors exceeds the engine maximum of {}",
            nprocs,
            EngineKind::EventLoop.max_procs()
        );
        Multicomputer {
            nprocs,
            mode,
            topology,
            faults: None,
            retry: RetryPolicy::default(),
            watchdog: None,
            engine: None,
            arenas: (0..nprocs).map(|_| Arc::new(PackArena::new())).collect(),
            sink: None,
        }
    }

    /// Force the execution backend used by [`Multicomputer::run_tasks`] /
    /// [`Multicomputer::run_tasks_with_ledgers`] instead of auto-selecting
    /// by machine size. [`EngineKind::EventLoop`] only models virtual
    /// time; in wall-clock mode the choice falls back to the threaded
    /// engine (see [`Multicomputer::task_engine`]).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The backend a task run will actually use: the forced choice if one
    /// was installed, otherwise [`EngineKind::Threaded`] up to its
    /// [`EngineKind::max_procs`] and [`EngineKind::EventLoop`] beyond —
    /// with the caveat that wall-clock mode always keeps real threads
    /// (there is no virtual timeline for the event loop to schedule).
    ///
    /// The closure-based [`Multicomputer::run`] /
    /// [`Multicomputer::run_with_ledgers`] entry points are always
    /// threaded: a synchronous closure has no yield points to schedule.
    pub fn task_engine(&self) -> EngineKind {
        let auto = if self.nprocs > EngineKind::Threaded.max_procs() {
            EngineKind::EventLoop
        } else {
            EngineKind::Threaded
        };
        let kind = self.engine.unwrap_or(auto);
        match (kind, self.mode) {
            (EngineKind::EventLoop, TimingMode::Virtual(_)) => EngineKind::EventLoop,
            _ => EngineKind::Threaded,
        }
    }

    /// Rank `rank`'s buffer-reuse arena. The same arena is handed to that
    /// rank's [`Env`] on every `run_*` call, so allocations recycled in one
    /// distribution are reused by the next.
    pub fn arena(&self, rank: usize) -> &PackArena {
        &self.arenas[rank]
    }

    /// Install a [`FaultPlan`]: all traffic now runs through the
    /// reliable-delivery layer (CRC32 framing, ack/nack, timeouts,
    /// retransmission).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Set the [`RetryPolicy`] used when a fault plan is installed.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Bound every blocking receive by a *wall-clock* watchdog: a `recv`
    /// that sees no frame within `limit` returns [`CommError::Stalled`]
    /// instead of blocking forever. The engine already cannot hang on an
    /// early peer error (a returning rank drops its channels, unblocking
    /// every peer with [`CommError::Disconnected`]), so the watchdog is a
    /// last-resort bound for chaos harnesses — it fires only on protocol
    /// bugs and never charges the virtual clock.
    pub fn with_watchdog(mut self, limit: Duration) -> Self {
        self.watchdog = Some(limit);
        self
    }

    /// The installed watchdog bound, if any.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    /// Install a [`TraceSink`]: every subsequent `run_*` call records one
    /// [`RankTrace`] per rank (spans, counters, histograms) and hands them
    /// to the sink in rank order after the run joins. Tracing is purely
    /// observational — it never charges the virtual clock — and a sink
    /// whose [`TraceSink::is_enabled`] is false (e.g.
    /// [`crate::trace::NullSink`]) costs nothing at all.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The installed trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The retry policy the reliable-delivery layer uses.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The machine's timing mode.
    pub fn mode(&self) -> TimingMode {
        self.mode
    }

    /// The α-β machine model this machine charges by. Wall-clock runs
    /// still expose the paper's IBM SP2 model so host-side decisions that
    /// price bytes against operations (e.g. wire codec negotiation) have
    /// coefficients to work with.
    pub fn model(&self) -> MachineModel {
        match self.mode {
            TimingMode::Virtual(m) => m,
            TimingMode::WallClock { .. } => MachineModel::ibm_sp2(),
        }
    }

    /// Run `f` in SPMD style on every processor and collect the return
    /// values in rank order. Each invocation gets an [`Env`] holding that
    /// rank's channels, clock and ledger.
    ///
    /// # Panics
    /// Propagates a panic from any processor's closure.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&mut Env) -> R + Sync,
        R: Send,
    {
        self.run_with_ledgers(f).0
    }

    /// Like [`Multicomputer::run`], but also returns each rank's
    /// [`PhaseLedger`] — the usual entry point for scheme drivers.
    pub fn run_with_ledgers<F, R>(&self, f: F) -> (Vec<R>, Vec<PhaseLedger>)
    where
        F: Fn(&mut Env) -> R + Sync,
        R: Send,
    {
        let p = self.nprocs;
        assert!(
            p <= EngineKind::Threaded.max_procs(),
            "the threaded engine supports at most {} processors; \
             use run_tasks (event loop) for larger machines",
            EngineKind::Threaded.max_procs()
        );
        // Data frames: chans[src][dst]. Ack control frames flow the other
        // way on their own matrix so they never interleave with data.
        let (data_tx, data_rx) = channel_matrix::<Frame>(p);
        let (ack_tx, ack_rx) = channel_matrix::<AckMsg>(p);

        let f = &f;
        let mode = self.mode;
        let topology = self.topology;
        let faults = &self.faults;
        let retry = self.retry;
        let watchdog = self.watchdog;
        let arenas = &self.arenas;
        let tracing = self.sink.as_ref().is_some_and(|s| s.is_enabled());
        let (results, ledgers, traces) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            let rows = data_tx
                .into_iter()
                .zip(data_rx)
                .zip(ack_tx.into_iter().zip(ack_rx));
            for (rank, ((tx_row, rx_row), (ack_tx_row, ack_rx_row))) in rows.enumerate() {
                handles.push(scope.spawn(move || {
                    let mut env = Env::new(
                        rank,
                        p,
                        mode,
                        topology,
                        faults.clone(),
                        retry,
                        watchdog,
                        Arc::clone(&arenas[rank]),
                        tracing,
                        Links::Threaded {
                            senders: tx_row,
                            receivers: rx_row,
                            ack_senders: ack_tx_row,
                            ack_receivers: ack_rx_row,
                        },
                    );
                    let out = f(&mut env);
                    let (ledger, trace) = env.into_parts();
                    (out, ledger, trace)
                }));
            }
            let mut results = Vec::with_capacity(p);
            let mut ledgers = Vec::with_capacity(p);
            let mut traces = Vec::with_capacity(p);
            for h in handles {
                // lint: allow(E002) — a panicked rank must abort the simulation; propagate
                let (r, l, t) = h.join().expect("simulated processor panicked");
                results.push(r);
                ledgers.push(l);
                traces.push(t);
            }
            (results, ledgers, traces)
        });
        if let Some(sink) = &self.sink {
            // Rank order by construction — sinks never need to re-sort.
            for trace in traces.into_iter().flatten() {
                sink.record(trace);
            }
        }
        (results, ledgers)
    }

    /// Run an *asynchronous* rank program on every processor and collect
    /// the return values in rank order — the scalable twin of
    /// [`Multicomputer::run`].
    ///
    /// `f` is called once per rank with the shared read-only context
    /// `ctx` and the rank's [`Env`], and returns that rank's task: a
    /// boxed future borrowing both (in practice, a named `async fn`
    /// wrapped in `Box::pin`). The context parameter exists because the
    /// `for<'e>` closure bound forbids the *closure* from capturing
    /// borrowed per-run state (owner maps, scheme tables) — thread it
    /// through `ctx` instead, where the compiler can tie its lifetime to
    /// each task's. Receives are the only awaited operations — sends,
    /// nonblocking posts and `wait_all` never block on a peer — so on
    /// the threaded backend the future completes in a single poll with
    /// *exactly* the blocking engine's behavior, while on the event loop
    /// ([`EngineKind::EventLoop`], auto-selected for machines beyond
    /// [`EngineKind::max_procs`] threads) the awaits become yield points
    /// and tens of thousands of ranks share one OS thread. Ledgers,
    /// traces, wire stats and fault fates are bit-identical between the
    /// two backends.
    pub fn run_tasks<C, F, R>(&self, ctx: &C, f: F) -> Vec<R>
    where
        C: Sync + ?Sized,
        F: for<'e> Fn(&'e C, &'e mut Env) -> Pin<Box<dyn Future<Output = R> + 'e>> + Sync,
        R: Send,
    {
        self.run_tasks_with_ledgers(ctx, f).0
    }

    /// Like [`Multicomputer::run_tasks`], but also returns each rank's
    /// [`PhaseLedger`] — the entry point for scheme drivers that need to
    /// scale past the threaded engine.
    pub fn run_tasks_with_ledgers<C, F, R>(&self, ctx: &C, f: F) -> (Vec<R>, Vec<PhaseLedger>)
    where
        C: Sync + ?Sized,
        F: for<'e> Fn(&'e C, &'e mut Env) -> Pin<Box<dyn Future<Output = R> + 'e>> + Sync,
        R: Send,
    {
        match self.task_engine() {
            EngineKind::Threaded => self.run_with_ledgers(|env| poll_complete(f(ctx, env))),
            EngineKind::EventLoop => self.run_tasks_event(ctx, &f),
        }
    }

    /// Event-loop backend: all ranks as tasks on this thread, scheduled
    /// by frame availability (see [`crate::exec`]).
    fn run_tasks_event<C, F, R>(&self, ctx: &C, f: &F) -> (Vec<R>, Vec<PhaseLedger>)
    where
        C: Sync + ?Sized,
        F: for<'e> Fn(&'e C, &'e mut Env) -> Pin<Box<dyn Future<Output = R> + 'e>> + Sync,
        R: Send,
    {
        let p = self.nprocs;
        let watchdog_ms = self
            .watchdog
            .map(|limit| limit.as_millis() as u64)
            .unwrap_or(0);
        let fabric = Rc::new(EventFabric::new(p, watchdog_ms));
        let tracing = self.sink.as_ref().is_some_and(|s| s.is_enabled());
        #[allow(clippy::type_complexity)]
        let mut tasks: Vec<
            Pin<Box<dyn Future<Output = (R, PhaseLedger, Option<RankTrace>)> + '_>>,
        > = Vec::with_capacity(p);
        for rank in 0..p {
            let env = Env::new(
                rank,
                p,
                self.mode,
                self.topology,
                self.faults.clone(),
                self.retry,
                self.watchdog,
                Arc::clone(&self.arenas[rank]),
                tracing,
                Links::Event(Rc::clone(&fabric)),
            );
            // The env is moved *into* the task so the future is
            // self-contained: no self-referential (env, future) pairs, no
            // unsafe.
            tasks.push(Box::pin(async move {
                let mut env = env;
                // lint: allow(C001) — the executor awaits the whole rank task; its only internal yield points are still receives
                let out = f(ctx, &mut env).await;
                let (ledger, trace) = env.into_parts();
                (out, ledger, trace)
            }));
        }
        let outs = exec::drive(tasks, &fabric);
        let mut results = Vec::with_capacity(p);
        let mut ledgers = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        for (r, l, t) in outs {
            results.push(r);
            ledgers.push(l);
            traces.push(t);
        }
        if let Some(sink) = &self.sink {
            for trace in traces.into_iter().flatten() {
                sink.record(trace);
            }
        }
        (results, ledgers)
    }
}

/// Drive a rank future on the *threaded* engine, where every await point
/// resolves immediately (receives block inside the poll, exactly like the
/// synchronous engine): one poll always completes the task.
fn poll_complete<R>(mut fut: Pin<Box<dyn Future<Output = R> + '_>>) -> R {
    let waker = exec::noop_waker();
    let mut cx = Context::from_waker(&waker);
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(r) => r,
        // Unreachable by construction: the threaded transport never
        // returns Pending — its receives block until a frame (or a
        // disconnect/stall verdict) is available.
        Poll::Pending => unreachable!("a threaded rank task pended"),
    }
}

/// Build a `p × p` channel matrix; returns per-rank rows of senders (to
/// every peer) and receivers (from every peer).
#[allow(clippy::type_complexity)]
fn channel_matrix<T>(p: usize) -> (Vec<Vec<Sender<T>>>, Vec<Vec<Receiver<T>>>) {
    let mut senders: Vec<Vec<Sender<T>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut receivers: Vec<Vec<Option<Receiver<T>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for (src, sender_row) in senders.iter_mut().enumerate() {
        for receiver_row in receivers.iter_mut() {
            let (tx, rx) = unbounded();
            sender_row.push(tx);
            receiver_row[src] = Some(rx);
        }
    }
    let receivers = receivers
        .into_iter()
        .map(|row| {
            row.into_iter()
                // lint: allow(E002) — the p×p loop above filled every (src, dst) slot
                .map(|r| r.expect("channel matrix fully populated"))
                .collect()
        })
        .collect();
    (senders, receivers)
}

enum Clock {
    Virtual {
        now: VirtualTime,
        model: MachineModel,
    },
    Wall {
        // lint: allow(D001) — wall-clock epoch is the point of WallClock mode
        epoch: Instant,
    },
}

/// One simulated processor's execution environment: its rank, its channels
/// to every peer, its clock, and its phase ledger.
pub struct Env {
    rank: usize,
    nprocs: usize,
    topology: Topology,
    clock: Clock,
    wire_ns_per_elem: u64,
    wire_ns_startup: u64,
    ledger: PhaseLedger,
    current_phase: Phase,
    /// Span/metrics recorder; `None` unless an enabled [`TraceSink`] is
    /// installed on the machine, so every hook below is a branch on `None`
    /// in the untraced hot path.
    tracer: Option<Tracer>,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
    watchdog: Option<Duration>,
    arena: Arc<PackArena>,
    /// Outgoing-link progress state for nonblocking sends ([`Env::isend`]).
    nic: NicProgress,
    /// Next per-link sequence number, keyed by destination. Sparse on
    /// purpose: a rank at p = 65536 typically talks to a handful of peers,
    /// and a dense per-rank `Vec` would cost O(p²) across the machine.
    send_seq: BTreeMap<usize, u64>,
    links: Links,
}

impl Env {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: usize,
        nprocs: usize,
        mode: TimingMode,
        topology: Topology,
        plan: Option<FaultPlan>,
        retry: RetryPolicy,
        watchdog: Option<Duration>,
        arena: Arc<PackArena>,
        tracing: bool,
        links: Links,
    ) -> Self {
        let (clock, wire_ns_per_elem, wire_ns_startup) = match mode {
            TimingMode::Virtual(model) => (
                Clock::Virtual {
                    now: VirtualTime::ZERO,
                    model,
                },
                0,
                0,
            ),
            TimingMode::WallClock {
                wire_ns_per_elem,
                wire_ns_startup,
            } => (
                Clock::Wall {
                    // lint: allow(D001) — WallClock mode anchors to real time on purpose
                    epoch: Instant::now(),
                },
                wire_ns_per_elem,
                wire_ns_startup,
            ),
        };
        Env {
            rank,
            nprocs,
            topology,
            clock,
            wire_ns_per_elem,
            wire_ns_startup,
            ledger: PhaseLedger::new(),
            current_phase: Phase::Other,
            tracer: tracing.then(|| Tracer::new(rank)),
            plan,
            retry,
            watchdog,
            arena,
            nic: NicProgress::new(),
            send_seq: BTreeMap::new(),
            links,
        }
    }

    /// Claim the next per-link sequence number for `dst`.
    fn next_seq(&mut self, dst: usize) -> u64 {
        let slot = self.send_seq.entry(dst).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// This processor's rank, `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// True in virtual-time mode.
    pub fn is_virtual(&self) -> bool {
        matches!(self.clock, Clock::Virtual { .. })
    }

    /// True if the fault plan declares `rank` dead.
    pub fn is_rank_dead(&self, rank: usize) -> bool {
        self.plan.as_ref().is_some_and(|p| p.is_dead(rank))
    }

    /// The virtual-time instant (µs) the plan schedules `rank` to die.
    fn death_time_us(&self, rank: usize) -> Option<f64> {
        self.plan.as_ref().and_then(|p| p.death_time(rank))
    }

    /// Push a death-notice frame for `died` onto the link to `dst`, so the
    /// receiver observes the death at the matching point in its stream.
    /// Best-effort: the peer may already have exited.
    fn push_death_notice(&mut self, dst: usize, died: usize, seq: u64) {
        let frame = Frame {
            seq,
            src: self.rank,
            payload: PackBuffer::new(),
            arrival: self.now(),
            crc: 0,
            injected: None,
            failed: false,
            dead: Some(died),
        };
        let _ = self.push_frame(dst, frame);
    }

    /// Death check for one attempt of a blocking or nonblocking send:
    /// `start` is when the sender commits the frame to the wire, `arrival`
    /// when it would land (including any injected delay). Returns the
    /// `PeerDead` error — after pushing the matching death notice — if the
    /// sender is already past its own death or the frame cannot land
    /// before the destination dies. Timed deaths are a virtual-time
    /// concept; wall-clock mode never reaches this.
    fn check_timed_death(
        &mut self,
        dst: usize,
        seq: u64,
        start: VirtualTime,
        arrival: VirtualTime,
    ) -> Result<(), CommError> {
        if let Some(t) = self.death_time_us(self.rank) {
            if start.as_micros() > t {
                self.push_death_notice(dst, self.rank, seq);
                return Err(CommError::PeerDead { rank: self.rank });
            }
        }
        if let Some(t) = self.death_time_us(dst) {
            if arrival.as_micros() > t {
                self.push_death_notice(dst, dst, seq);
                return Err(CommError::PeerDead { rank: dst });
            }
        }
        Ok(())
    }

    /// This rank's buffer-reuse arena. Buffers checked out here and
    /// recycled after use keep their allocations across distributions
    /// (the arena lives on the [`Multicomputer`], not the `Env`).
    pub fn arena(&self) -> &PackArena {
        &self.arena
    }

    /// Count one physical transmission in the ledger's [`WireStats`].
    fn record_tx(&mut self, elems: u64, bytes: usize) {
        *self.ledger.wire_mut() += WireStats {
            messages: 1,
            elements: elems,
            bytes: bytes as u64,
        };
    }

    /// The ranks that are alive under the current fault plan, ascending
    /// (all ranks when no plan is installed).
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.nprocs)
            .filter(|&r| !self.is_rank_dead(r))
            .collect()
    }

    /// Current local clock reading.
    pub fn now(&self) -> VirtualTime {
        match &self.clock {
            Clock::Virtual { now, .. } => *now,
            Clock::Wall { epoch } => VirtualTime::from_micros(epoch.elapsed().as_secs_f64() * 1e6),
        }
    }

    /// Run `f` attributed to `phase`.
    ///
    /// Virtual mode: sets the current phase so [`Env::charge_ops`] books
    /// into it. Wall mode: measures the body's elapsed wall time into the
    /// ledger (charges are no-ops there).
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Env) -> T) -> T {
        let prev = self.current_phase;
        self.current_phase = phase;
        let wall_start = match &self.clock {
            Clock::Wall { epoch } => Some((*epoch, epoch.elapsed())),
            Clock::Virtual { .. } => None,
        };
        self.trace_open(phase, String::new());
        let out = f(self);
        if let Some((epoch, start)) = wall_start {
            let span = epoch.elapsed().saturating_sub(start);
            self.ledger
                .record(phase, VirtualTime::from_micros(span.as_secs_f64() * 1e6));
        }
        self.trace_close();
        self.current_phase = prev;
        out
    }

    /// Run `f` as a labelled trace span inside the current phase — used by
    /// the collectives so a `scatterv` or `allreduce` shows up as one unit
    /// in the trace. A pure pass-through when tracing is off.
    pub fn span<T>(&mut self, label: &str, f: impl FnOnce(&mut Env) -> T) -> T {
        if self.tracer.is_none() {
            return f(self);
        }
        self.trace_open(self.current_phase, label.to_string());
        let out = f(self);
        self.trace_close();
        out
    }

    /// True when this run records spans (an enabled sink is installed).
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Set the driver scope stamped on subsequent spans (`"SFC"`, `"ED"`,
    /// `"redistribute"`, …). No-op when tracing is off.
    pub fn trace_scope(&mut self, scope: &'static str) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_scope(scope);
        }
    }

    /// Attach `(part id, ops)` pairs — merged in part order, exactly the
    /// numbers `map_parts` produces — to the innermost open span. On close
    /// the span subdivides into per-part child spans proportional to the
    /// counts, which in virtual mode reproduces the sequential execution's
    /// intervals exactly. No-op when tracing is off.
    pub fn trace_part_ops(&mut self, parts: &[(usize, u64)]) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.part_ops(parts);
        }
    }

    /// Bump a named metrics counter on this rank. No-op when tracing is
    /// off.
    pub fn trace_count(&mut self, name: &'static str, v: u64) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.metrics_mut().count(name, v);
        }
    }

    fn trace_open(&mut self, phase: Phase, label: String) {
        // Outer check first: `now()`/`wire()` borrow `self`, so they must
        // be read before `tracer` is mutably borrowed.
        if self.tracer.is_some() {
            let now = self.now();
            let wire = self.ledger.wire();
            if let Some(tr) = self.tracer.as_mut() {
                tr.open(phase, label, now, wire);
            }
        }
    }

    fn trace_close(&mut self) {
        if self.tracer.is_some() {
            let now = self.now();
            let wire = self.ledger.wire();
            if let Some(tr) = self.tracer.as_mut() {
                tr.close(now, wire);
            }
        }
    }

    /// Record one physical transmission as a span plus a histogram sample.
    fn trace_tx(&mut self, phase: Phase, dst: usize, t0: VirtualTime, elems: u64, bytes: usize) {
        let t1 = self.now();
        if let Some(tr) = self.tracer.as_mut() {
            tr.metrics_mut().observe("tx.elems", elems);
            tr.emit(
                phase,
                format!("->{dst}"),
                t0,
                t1,
                WireStats {
                    messages: 1,
                    elements: elems,
                    bytes: bytes as u64,
                },
            );
        }
    }

    /// Charge `n` element operations (`n × T_Operation`) to the local clock
    /// and the current phase. No-op in wall-clock mode.
    pub fn charge_ops(&mut self, n: u64) {
        if let Clock::Virtual { now, model } = &mut self.clock {
            let cost = model.op_cost(n);
            *now += cost;
            self.ledger.record(self.current_phase, cost);
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.note_ops(n);
        }
    }

    /// Charge the wire cost of one transmission of `elems` elements over
    /// `hops` links into `phase`, returning the post-charge clock (virtual
    /// mode), or busy-wait the configured wire time (wall mode).
    fn charge_wire(&mut self, elems: u64, hops: usize, phase: Phase) -> VirtualTime {
        match &mut self.clock {
            Clock::Virtual { now, model } => {
                let cost = model.message_cost_hops(elems, hops.max(1));
                *now += cost;
                self.ledger.record(phase, cost);
                *now
            }
            Clock::Wall { .. } => {
                let ns = self.wire_ns_startup + self.wire_ns_per_elem * elems;
                if ns > 0 {
                    // lint: allow(D001) — WallClock mode burns real nanoseconds here
                    let start = Instant::now();
                    while (start.elapsed().as_nanos() as u64) < ns {
                        std::hint::spin_loop();
                    }
                }
                VirtualTime::ZERO
            }
        }
    }

    /// Charge `us` microseconds of ARQ timeout to [`Phase::Retry`]
    /// (virtual mode only; in wall mode the timeout is counted, not slept).
    fn charge_timeout(&mut self, us: f64) {
        if let Clock::Virtual { now, .. } = &mut self.clock {
            let span = VirtualTime::from_micros(us);
            *now += span;
            self.ledger.record(Phase::Retry, span);
        }
    }

    /// Send `payload` to `dst`.
    ///
    /// Virtual mode: charges `T_Startup + hops·T_Hop + elems × T_Data` to
    /// the local clock, attributed to [`Phase::Send`], and stamps the
    /// message with the post-charge clock as its arrival time. Wall mode:
    /// optionally busy-waits the configured wire cost, then moves the
    /// buffer.
    ///
    /// With a [`FaultPlan`] installed the transmission runs through the
    /// reliable-delivery layer: injected drops and corruptions trigger
    /// timeouts, exponential backoff and retransmission (charged to
    /// [`Phase::Retry`]); exhausting the retry budget returns
    /// [`CommError::RetriesExhausted`]; a dead peer returns
    /// [`CommError::PeerDead`].
    ///
    /// # Panics
    /// Panics if `dst` is out of range (API misuse, like slice indexing).
    pub fn send(&mut self, dst: usize, payload: PackBuffer) -> Result<(), CommError> {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        if self.is_rank_dead(dst) {
            return Err(CommError::PeerDead { rank: dst });
        }
        if self.is_rank_dead(self.rank) {
            return Err(CommError::PeerDead { rank: self.rank });
        }
        let hops = self.topology.hops(self.rank, dst, self.nprocs);
        let seq = self.next_seq(dst);

        let Some(plan) = self.plan.clone() else {
            // Fast path: the original engine, byte-for-byte cost behavior.
            let t0 = self.tracer.is_some().then(|| self.now());
            let arrival = self.charge_wire(payload.elem_count(), hops, Phase::Send);
            self.record_tx(payload.elem_count(), payload.byte_len());
            if let Some(t0) = t0 {
                self.trace_tx(
                    Phase::Send,
                    dst,
                    t0,
                    payload.elem_count(),
                    payload.byte_len(),
                );
            }
            let frame = Frame {
                seq,
                src: self.rank,
                payload,
                arrival,
                crc: 0,
                injected: None,
                failed: false,
                dead: None,
            };
            return self.push_frame(dst, frame);
        };

        self.drain_acks(dst);
        let crc = payload.crc32();
        let elems = payload.elem_count();
        let nbytes = payload.byte_len();
        let mut attempt: u32 = 0;
        loop {
            let fate = plan.decide(self.rank, dst, seq, attempt, self.current_phase);
            if plan.has_timed_deaths() {
                if let Clock::Virtual { now, model } = &self.clock {
                    let start = *now;
                    let mut would_arrive = start + model.message_cost_hops(elems, hops.max(1));
                    if let Some(FaultKind::Delay(extra)) = fate {
                        would_arrive += VirtualTime::from_micros(extra);
                    }
                    self.check_timed_death(dst, seq, start, would_arrive)?;
                }
            }
            let wire_phase = if attempt == 0 {
                Phase::Send
            } else {
                Phase::Retry
            };
            let t0 = self.tracer.is_some().then(|| self.now());
            let sent_at = self.charge_wire(elems, hops, wire_phase);
            self.record_tx(elems, nbytes);
            if let Some(t0) = t0 {
                self.trace_tx(wire_phase, dst, t0, elems, nbytes);
            }
            match fate {
                None | Some(FaultKind::Delay(_)) => {
                    let arrival = match fate {
                        Some(FaultKind::Delay(extra_us)) => match self.clock {
                            Clock::Virtual { .. } => sent_at + VirtualTime::from_micros(extra_us),
                            Clock::Wall { .. } => sent_at,
                        },
                        _ => sent_at,
                    };
                    let frame = Frame {
                        seq,
                        src: self.rank,
                        payload,
                        arrival,
                        crc,
                        injected: fate,
                        failed: false,
                        dead: None,
                    };
                    return self.push_frame(dst, frame);
                }
                Some(fault @ (FaultKind::Drop | FaultKind::Corrupt)) => {
                    // Transmit the doomed frame so the blocking receiver can
                    // observe (and for corruption, CRC-reject) it.
                    let mut wire_payload = payload.clone();
                    if fault == FaultKind::Corrupt {
                        wire_payload.flip_bit(plan.aux_roll(self.rank, dst, seq, attempt));
                    }
                    let frame = Frame {
                        seq,
                        src: self.rank,
                        payload: wire_payload,
                        arrival: sent_at,
                        crc,
                        injected: Some(fault),
                        failed: false,
                        dead: None,
                    };
                    self.push_frame(dst, frame)?;
                    if attempt >= self.retry.max_retries {
                        // Unblock the receiver with a poison frame before
                        // reporting failure on this side.
                        let poison = Frame {
                            seq,
                            src: self.rank,
                            payload: PackBuffer::new(),
                            arrival: sent_at,
                            crc: 0,
                            injected: None,
                            failed: true,
                            dead: None,
                        };
                        self.push_frame(dst, poison)?;
                        return Err(CommError::RetriesExhausted {
                            src: self.rank,
                            dst,
                            seq,
                            attempts: attempt + 1,
                        });
                    }
                    let t0 = self.tracer.is_some().then(|| self.now());
                    self.charge_timeout(self.retry.timeout_for(attempt));
                    if let Some(t0) = t0 {
                        let t1 = self.now();
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.emit(
                                Phase::Retry,
                                format!("timeout->{dst}"),
                                t0,
                                t1,
                                WireStats::default(),
                            );
                        }
                    }
                    self.ledger.faults_mut().retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    fn push_frame(&mut self, dst: usize, frame: Frame) -> Result<(), CommError> {
        let pushed = match &self.links {
            Links::Threaded { senders, .. } => senders[dst]
                .send(frame)
                .map_err(|_| CommError::Disconnected { peer: dst }),
            Links::Event(fabric) => fabric.push_frame(dst, self.rank, frame),
        };
        match pushed {
            // A peer with a scheduled timed death tears its transport down
            // at a moment the virtual clock cannot see (the threaded engine
            // drops its channel whenever the victim's OS thread happens to
            // exit). Under the virtual clock, `check_timed_death` is the
            // sole arbiter of whether a frame lands before the death — it
            // has already ruled on this frame, so the push "delivers" into
            // the void of a rank that dies before the contents matter.
            // Surfacing the teardown would leak host scheduling into the
            // outcome and make the two engines disagree run to run.
            Err(CommError::Disconnected { .. })
                if matches!(self.clock, Clock::Virtual { .. })
                    && self.death_time_us(dst).is_some() =>
            {
                Ok(())
            }
            other => other,
        }
    }

    /// Emit one nonblocking transmission span into the trace.
    fn trace_tx_nb(
        &mut self,
        phase: Phase,
        dst: usize,
        window: crate::progress::TxWindow,
        elems: u64,
        nbytes: usize,
    ) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.metrics_mut().observe("tx.elems", elems);
            tr.emit(
                phase,
                format!("->{dst} (nb)"),
                window.start,
                window.arrival,
                WireStats {
                    messages: 1,
                    elements: elems,
                    bytes: nbytes as u64,
                },
            );
        }
    }

    /// Nonblocking send: post `payload` to this rank's NIC and return
    /// immediately **without advancing the local clock**.
    ///
    /// The NIC serialises the rank's outgoing transmissions (see
    /// [`crate::progress::NicProgress`]): the frame occupies the wire from
    /// `max(now, nic_free)` for the usual `T_Startup + hops·T_Hop +
    /// elems·T_Data`, and its arrival is stamped accordingly — so compute
    /// performed between `isend` calls genuinely overlaps with the
    /// transfers. Call [`Env::wait_all`] to rejoin the NIC; the completion
    /// jump is booked into the phase current *at the wait*.
    ///
    /// With a [`FaultPlan`] installed the ARQ runs **on the NIC timeline**
    /// instead of degrading to the blocking [`Env::send`]. Fault fates are
    /// pure hashes shared with the receiver, so the whole retransmit
    /// schedule is computable at post time: doomed attempts occupy the
    /// wire, each followed by its [`RetryPolicy::timeout_for`] backoff gap,
    /// until a clean (or delayed) attempt is committed — all as labelled
    /// NIC spans, with the CPU clock untouched. `wait_all` later books the
    /// recovery slice of the drain to [`Phase::Retry`] and the rest to the
    /// waiting phase, so a run with no compute between post and wait
    /// charges exactly the blocking totals, while recovery hidden behind
    /// compute costs nothing. Retry exhaustion surfaces here, at post
    /// time, as [`CommError::RetriesExhausted`] (the receiver is unblocked
    /// by a poison frame, as on the blocking path).
    ///
    /// In wall-clock mode there is no virtual NIC to model, so the call
    /// falls back to a plain `send`.
    ///
    /// # Errors
    /// Same failure modes as [`Env::send`].
    ///
    /// # Panics
    /// Panics if `dst` is out of range (API misuse, like slice indexing).
    pub fn isend(&mut self, dst: usize, payload: PackBuffer) -> Result<(), CommError> {
        assert!(dst < self.nprocs, "isend to rank {dst} of {}", self.nprocs);
        if !self.is_virtual() {
            return self.send(dst, payload);
        }
        if self.is_rank_dead(dst) {
            return Err(CommError::PeerDead { rank: dst });
        }
        if self.is_rank_dead(self.rank) {
            return Err(CommError::PeerDead { rank: self.rank });
        }
        let hops = self.topology.hops(self.rank, dst, self.nprocs);
        let seq = self.next_seq(dst);
        let elems = payload.elem_count();
        let nbytes = payload.byte_len();
        let (now, cost) = match &self.clock {
            Clock::Virtual { now, model } => (*now, model.message_cost_hops(elems, hops.max(1))),
            // Unreachable: the !is_virtual() guard above already bailed.
            Clock::Wall { .. } => return self.send(dst, payload),
        };

        let Some(plan) = self.plan.clone() else {
            // Fast path: clean single transmission on the NIC.
            let window = self.nic.begin_tx(now, cost);
            self.record_tx(elems, nbytes);
            self.trace_tx_nb(Phase::Send, dst, window, elems, nbytes);
            let frame = Frame {
                seq,
                src: self.rank,
                payload,
                arrival: window.arrival,
                crc: 0,
                injected: None,
                failed: false,
                dead: None,
            };
            return self.push_frame(dst, frame);
        };

        // Async ARQ: walk the deterministic attempt schedule on the NIC.
        self.drain_acks(dst);
        let crc = payload.crc32();
        let mut attempt: u32 = 0;
        loop {
            let fate = plan.decide(self.rank, dst, seq, attempt, self.current_phase);
            if plan.has_timed_deaths() {
                let start = now.max(self.nic.free_at());
                let mut would_arrive = start + cost;
                if let Some(FaultKind::Delay(extra)) = fate {
                    would_arrive += VirtualTime::from_micros(extra);
                }
                // The sender commits the frame at post time, not at the
                // scheduled wire start: `now` is when it acts.
                self.check_timed_death(dst, seq, now, would_arrive)?;
            }
            let window = if attempt == 0 {
                self.nic.begin_tx(now, cost)
            } else {
                self.nic.begin_retry_tx(now, cost)
            };
            self.record_tx(elems, nbytes);
            let wire_phase = if attempt == 0 {
                Phase::Send
            } else {
                Phase::Retry
            };
            self.trace_tx_nb(wire_phase, dst, window, elems, nbytes);
            match fate {
                None | Some(FaultKind::Delay(_)) => {
                    let arrival = match fate {
                        Some(FaultKind::Delay(extra_us)) => {
                            window.arrival + VirtualTime::from_micros(extra_us)
                        }
                        _ => window.arrival,
                    };
                    let frame = Frame {
                        seq,
                        src: self.rank,
                        payload,
                        arrival,
                        crc,
                        injected: fate,
                        failed: false,
                        dead: None,
                    };
                    return self.push_frame(dst, frame);
                }
                Some(fault @ (FaultKind::Drop | FaultKind::Corrupt)) => {
                    // Transmit the doomed frame so the receiver can observe
                    // (and for corruption, CRC-reject) it.
                    let mut wire_payload = payload.clone();
                    if fault == FaultKind::Corrupt {
                        wire_payload.flip_bit(plan.aux_roll(self.rank, dst, seq, attempt));
                    }
                    let frame = Frame {
                        seq,
                        src: self.rank,
                        payload: wire_payload,
                        arrival: window.arrival,
                        crc,
                        injected: Some(fault),
                        failed: false,
                        dead: None,
                    };
                    self.push_frame(dst, frame)?;
                    if attempt >= self.retry.max_retries {
                        let poison = Frame {
                            seq,
                            src: self.rank,
                            payload: PackBuffer::new(),
                            arrival: window.arrival,
                            crc: 0,
                            injected: None,
                            failed: true,
                            dead: None,
                        };
                        self.push_frame(dst, poison)?;
                        return Err(CommError::RetriesExhausted {
                            src: self.rank,
                            dst,
                            seq,
                            attempts: attempt + 1,
                        });
                    }
                    self.nic
                        .timeout_gap(VirtualTime::from_micros(self.retry.timeout_for(attempt)));
                    self.ledger.faults_mut().retries += 1;
                    attempt += 1;
                }
            }
        }
    }

    /// Complete every transmission posted with [`Env::isend`]: the local
    /// clock jumps forward to the NIC-idle instant (if it is ahead) and the
    /// jump is booked into the **current phase** — wrap the call in
    /// `env.phase(Phase::Send, |env| env.wait_all())` to attribute the
    /// drain to the send phase. Any slice of the jump the NIC spent on ARQ
    /// recovery (retransmission wire time and backoff timeouts, see
    /// [`Env::isend`]) is booked to [`Phase::Retry`] instead, mirroring the
    /// blocking sender's attribution. A no-op in wall-clock mode, with no
    /// posted sends, or when the CPU already ran past the NIC (in which
    /// case even recovery time was hidden and costs nothing).
    pub fn wait_all(&mut self) {
        let pre = match &self.clock {
            Clock::Virtual { now, .. } => *now,
            Clock::Wall { .. } => {
                self.nic.drain();
                return;
            }
        };
        let target = self.nic.free_at();
        // Compute the recovery slice before the drain clears the timeline.
        let retry = self.nic.retry_within(pre, target);
        self.nic.drain();
        let jump = target.saturating_sub(pre);
        if jump.as_micros() <= 0.0 {
            return;
        }
        if let Clock::Virtual { now, .. } = &mut self.clock {
            *now = target;
        }
        let phase = self.current_phase;
        if retry.as_micros() > 0.0 {
            self.ledger.record(Phase::Retry, retry);
        }
        self.ledger.record(phase, jump.saturating_sub(retry));
        if let Some(tr) = self.tracer.as_mut() {
            tr.emit(
                phase,
                "wait_all".to_string(),
                pre,
                target,
                WireStats::default(),
            );
        }
    }

    /// Post a nonblocking receive for the next message from `src`.
    ///
    /// Posting costs nothing — the matching [`Env::wait_recv`] performs the
    /// actual (deterministic, arrival-stamped) receive. Handles from the
    /// same `src` complete in FIFO order, mirroring the channel.
    pub fn irecv(&mut self, src: usize) -> RecvHandle {
        assert!(
            src < self.nprocs,
            "irecv from rank {src} of {}",
            self.nprocs
        );
        RecvHandle { src }
    }

    /// Complete a receive posted with [`Env::irecv`]. Identical semantics
    /// to calling [`Env::recv`] at this point: the clock syncs to the
    /// message's arrival and any forward jump books as [`Phase::Wait`].
    ///
    /// # Errors
    /// Same failure modes as [`Env::recv`].
    pub fn wait_recv(&mut self, handle: RecvHandle) -> Result<Message, CommError> {
        self.recv(handle.src)
    }

    /// Blocking receive of the next message from `src`.
    ///
    /// Virtual mode: synchronises the local clock with the message's
    /// arrival time; any forward jump is booked as [`Phase::Wait`].
    ///
    /// With a [`FaultPlan`] installed, faulted frames are consumed here:
    /// dropped frames are skipped silently (the sender's timeout pays for
    /// them), corrupted frames fail the CRC32 check and are nacked, and
    /// clean frames are acked — all counted in the ledger's
    /// [`crate::timing::FaultStats`]. A sender that exhausted its retries
    /// surfaces as [`CommError::RetriesExhausted`]; a dead peer as
    /// [`CommError::PeerDead`].
    ///
    /// # Panics
    /// Panics if `src` is out of range (API misuse, like slice indexing).
    pub fn recv(&mut self, src: usize) -> Result<Message, CommError> {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        self.recv_preflight(src)?;
        loop {
            let frame = self.next_frame(src)?;
            if let Some(msg) = self.process_frame(src, frame)? {
                return Ok(msg);
            }
        }
    }

    /// Asynchronous twin of [`Env::recv`]: identical semantics, identical
    /// charges, but the wait for a frame is an `await` point. On the
    /// threaded engine the await resolves immediately (the transport
    /// blocks inside the poll); on the event loop it parks the rank's task
    /// until the frame is pushed. This is the *only* suspension point a
    /// rank task has — sends and collectives built from sends never block
    /// on a peer.
    ///
    /// # Errors
    /// Same failure modes as [`Env::recv`].
    ///
    /// # Panics
    /// Panics if `src` is out of range (API misuse, like slice indexing).
    pub async fn recv_async(&mut self, src: usize) -> Result<Message, CommError> {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        self.recv_preflight(src)?;
        loop {
            let frame = self.next_frame_async(src).await?;
            if let Some(msg) = self.process_frame(src, frame)? {
                return Ok(msg);
            }
        }
    }

    /// Dead-rank checks shared by the blocking and async receive paths.
    fn recv_preflight(&self, src: usize) -> Result<(), CommError> {
        if self.is_rank_dead(src) {
            return Err(CommError::PeerDead { rank: src });
        }
        if self.is_rank_dead(self.rank) {
            return Err(CommError::PeerDead { rank: self.rank });
        }
        Ok(())
    }

    /// Consume one frame from `src`: deliver it (`Ok(Some)`), absorb it
    /// and keep waiting (`Ok(None)` — injected drops and CRC-rejected
    /// corruptions), or surface the failure it encodes. Every charge the
    /// receive path makes happens here, shared verbatim by both engines.
    fn process_frame(&mut self, src: usize, frame: Frame) -> Result<Option<Message>, CommError> {
        if let Some(rank) = frame.dead {
            return Err(CommError::PeerDead { rank });
        }
        if frame.failed {
            return Err(CommError::RetriesExhausted {
                src,
                dst: self.rank,
                seq: frame.seq,
                attempts: self.retry.max_retries + 1,
            });
        }
        if self.plan.is_none() {
            // Fast path: deliver directly, original cost behavior.
            return Ok(Some(self.deliver(frame)));
        }
        match frame.injected {
            Some(FaultKind::Drop) => {
                // Lost on the wire: the receiver never saw it; only the
                // deterministic drop counter records it.
                self.ledger.faults_mut().drops += 1;
                return Ok(None);
            }
            Some(FaultKind::Delay(_)) => {
                self.ledger.faults_mut().delays += 1;
            }
            _ => {}
        }
        // CRC verification walks every payload element once.
        self.phase(Phase::Recv, |env| {
            env.charge_ops(frame.payload.elem_count())
        });
        let ok = frame.payload.crc32() == frame.crc;
        self.send_ack(src, AckMsg { seq: frame.seq, ok });
        if ok {
            return Ok(Some(self.deliver(frame)));
        }
        self.ledger.faults_mut().corrupts += 1;
        Ok(None)
    }

    /// Pull the next frame from `src`, honouring the wall-clock watchdog
    /// when one is installed (see [`Multicomputer::with_watchdog`]). On an
    /// event-loop env this cannot block (there is no thread to park), so
    /// an empty link reports a stall — synchronous receives belong to the
    /// threaded engine, asynchronous rank tasks await
    /// [`Env::next_frame_async`] instead.
    fn next_frame(&mut self, src: usize) -> Result<Frame, CommError> {
        match &self.links {
            Links::Threaded { receivers, .. } => match self.watchdog {
                None => receivers[src]
                    .recv()
                    .map_err(|_| CommError::Disconnected { peer: src }),
                Some(limit) => match receivers[src].recv_timeout(limit) {
                    Ok(frame) => Ok(frame),
                    Err(RecvTimeoutError::Disconnected) => {
                        Err(CommError::Disconnected { peer: src })
                    }
                    Err(RecvTimeoutError::Timeout) => Err(CommError::Stalled {
                        src,
                        waited_ms: limit.as_millis() as u64,
                    }),
                },
            },
            Links::Event(fabric) => fabric.try_next_frame(self.rank, src),
        }
    }

    /// Await the next frame from `src`: the transport-level yield point of
    /// a rank task. Threaded links resolve in the same poll by blocking;
    /// event links park the task until the frame (or a disconnect/stall
    /// verdict) is available.
    async fn next_frame_async(&mut self, src: usize) -> Result<Frame, CommError> {
        match &self.links {
            Links::Threaded { .. } => self.next_frame(src),
            Links::Event(fabric) => fabric.frame_wait(self.rank, src).await,
        }
    }

    /// Clock-sync to the frame's arrival and hand it to the caller.
    fn deliver(&mut self, frame: Frame) -> Message {
        if let Clock::Virtual { now, .. } = &mut self.clock {
            let pre = *now;
            let jump = frame.arrival.saturating_sub(*now);
            *now = now.max(frame.arrival);
            self.ledger.record(Phase::Wait, jump);
            if jump.as_micros() > 0.0 {
                if let Some(tr) = self.tracer.as_mut() {
                    tr.emit(
                        Phase::Wait,
                        format!("<-{}", frame.src),
                        pre,
                        frame.arrival,
                        WireStats::default(),
                    );
                }
            }
        }
        Message {
            src: frame.src,
            payload: frame.payload,
            arrival: frame.arrival,
        }
    }

    /// Emit an ack/nack control frame and charge its wire cost (a one-
    /// element control message) to [`Phase::Recv`].
    fn send_ack(&mut self, src: usize, ack: AckMsg) {
        if ack.ok {
            self.ledger.faults_mut().acks += 1;
        } else {
            self.ledger.faults_mut().nacks += 1;
        }
        if let Clock::Virtual { now, model } = &mut self.clock {
            let cost = model.message_cost(1);
            *now += cost;
            self.ledger.record(Phase::Recv, cost);
        }
        // The peer may already have finished — a vanished ack listener is
        // not an error; acks are confirmations, not data.
        match &self.links {
            Links::Threaded { ack_senders, .. } => {
                let _ = ack_senders[src].send(ack);
            }
            Links::Event(fabric) => fabric.push_ack(src, self.rank, ack),
        }
    }

    /// Opportunistically drain delivery confirmations from `dst`. The
    /// fault plan already told the sender everything the acks would (the
    /// decisions are shared), so these only sanity-check the protocol.
    fn drain_acks(&mut self, dst: usize) {
        let sent = self.send_seq.get(&dst).copied().unwrap_or(0);
        let check = |ack: &AckMsg| {
            debug_assert!(
                ack.seq < sent,
                "ack for a frame rank {} never sent to {dst}",
                self.rank
            );
        };
        match &self.links {
            Links::Threaded { ack_receivers, .. } => {
                while let Ok(ack) = ack_receivers[dst].try_recv() {
                    check(&ack);
                }
            }
            Links::Event(fabric) => {
                while let Some(ack) = fabric.pop_ack(self.rank, dst) {
                    check(&ack);
                }
            }
        }
    }

    /// Immutable view of the ledger accumulated so far.
    pub fn ledger(&self) -> &PhaseLedger {
        &self.ledger
    }

    /// Finalize the rank: drain stray acks, fold arena statistics into the
    /// metrics registry and close out the trace (when tracing).
    fn into_parts(mut self) -> (PhaseLedger, Option<RankTrace>) {
        if self.plan.is_some() {
            for dst in 0..self.nprocs {
                self.drain_acks(dst);
            }
        }
        let trace = self.tracer.take().map(|mut tr| {
            let st = self.arena.stats();
            tr.metrics_mut().count("arena.checkouts", st.checkouts);
            tr.metrics_mut().count("arena.reuses", st.reuses);
            tr.metrics_mut().count("arena.recycles", st.recycles);
            tr.finish(&self.ledger)
        });
        (self.ledger, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel::new(10.0, 2.0, 1.0)
    }

    #[test]
    fn ranks_and_sizes() {
        let m = Multicomputer::virtual_machine(5, model());
        let ranks = m.run(|env| {
            assert_eq!(env.nprocs(), 5);
            env.rank()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn point_to_point_round_trip() {
        let m = Multicomputer::virtual_machine(2, model());
        let results = m.run(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_f64(3.25);
                env.send(1, b).unwrap();
                let back = env.recv(1).unwrap();
                back.payload.cursor().read_f64()
            } else {
                let msg = env.recv(0).unwrap();
                let v = msg.payload.cursor().read_f64();
                let mut b = PackBuffer::new();
                b.push_f64(v * 2.0);
                env.send(0, b).unwrap();
                v
            }
        });
        assert_eq!(results, vec![6.5, 3.25]);
    }

    #[test]
    fn virtual_send_cost_is_charged() {
        let m = Multicomputer::virtual_machine(2, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3, 4, 5]);
                env.send(1, b).unwrap();
            } else {
                env.recv(0).unwrap();
            }
        });
        // t_startup + 5 elems * t_data = 10 + 10 = 20 µs at the sender.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 20.0);
        // Receiver started at 0 and the message arrived at 20: 20 µs wait.
        assert_eq!(ledgers[1].get(Phase::Wait).as_micros(), 20.0);
    }

    #[test]
    fn charge_ops_books_current_phase() {
        let m = Multicomputer::virtual_machine(1, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Compress, |env| env.charge_ops(7));
            env.charge_ops(3); // outside any phase block -> Other
        });
        assert_eq!(ledgers[0].get(Phase::Compress).as_micros(), 7.0);
        assert_eq!(ledgers[0].get(Phase::Other).as_micros(), 3.0);
    }

    #[test]
    fn virtual_clocks_are_deterministic() {
        // Arrival times depend only on causality, so repeated runs agree
        // exactly even under different host scheduling.
        let run_once = || {
            let m = Multicomputer::virtual_machine(4, model());
            let (_, ledgers) = m.run_with_ledgers(|env| {
                if env.rank() == 0 {
                    for dst in 1..env.nprocs() {
                        let mut b = PackBuffer::new();
                        b.push_u64_slice(&vec![0; dst * 10]);
                        env.send(dst, b).unwrap();
                    }
                } else {
                    env.recv(0).unwrap();
                    env.charge_ops(100);
                }
            });
            ledgers
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn self_send_works() {
        let m = Multicomputer::virtual_machine(3, model());
        let results = m.run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64);
            env.send(env.rank(), b).unwrap();
            env.recv(env.rank()).unwrap().payload.cursor().read_u64()
        });
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn wall_clock_phase_measures_time() {
        let m = Multicomputer::wall_clock(1);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Compute, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(ledgers[0].get(Phase::Compute).as_millis() >= 4.0);
    }

    #[test]
    fn wall_clock_charges_are_noop() {
        let m = Multicomputer::wall_clock(1);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.charge_ops(1_000_000_000);
        });
        // charge_ops must not book anything in wall mode.
        assert_eq!(ledgers[0].get(Phase::Other).as_micros(), 0.0);
    }

    #[test]
    fn messages_from_same_source_preserve_order() {
        let m = Multicomputer::virtual_machine(2, model());
        let results = m.run(|env| {
            if env.rank() == 0 {
                for i in 0..10u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.send(1, b).unwrap();
                }
                Vec::new()
            } else {
                (0..10)
                    .map(|_| env.recv(0).unwrap().payload.cursor().read_u64())
                    .collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn message_src_is_stamped() {
        let m = Multicomputer::virtual_machine(3, model());
        let results = m.run(|env| {
            if env.rank() == 2 {
                let a = env.recv(0).unwrap().src;
                let b = env.recv(1).unwrap().src;
                (a, b)
            } else {
                env.send(2, PackBuffer::new()).unwrap();
                (usize::MAX, usize::MAX)
            }
        });
        assert_eq!(results[2], (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Multicomputer::virtual_machine(0, model());
    }

    #[test]
    fn topology_hop_cost_charged_on_send() {
        // Ring of 4 with t_hop = 5: 0→2 is 2 hops.
        let hop_model = MachineModel::new(10.0, 2.0, 1.0).with_hop_cost(5.0);
        let m = Multicomputer::virtual_with_topology(4, hop_model, Topology::Ring);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                env.send(2, b).unwrap();
            } else if env.rank() == 2 {
                env.recv(0).unwrap();
            }
        });
        // 10 startup + 2 hops * 5 + 3 elems * 2 = 26 µs.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 26.0);
    }

    #[test]
    #[should_panic(expected = "topology grid")]
    fn mismatched_topology_grid_rejected() {
        let _ = Multicomputer::virtual_with_topology(6, model(), Topology::Mesh2D { pr: 2, pc: 2 });
    }

    #[test]
    fn nested_phases_restore_outer() {
        let m = Multicomputer::virtual_machine(1, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Pack, |env| {
                env.charge_ops(1);
                env.phase(Phase::Unpack, |env| env.charge_ops(2));
                env.charge_ops(4);
            });
        });
        assert_eq!(ledgers[0].get(Phase::Pack).as_micros(), 5.0);
        assert_eq!(ledgers[0].get(Phase::Unpack).as_micros(), 2.0);
    }

    #[test]
    fn wire_stats_count_messages_elements_and_bytes() {
        let m = Multicomputer::virtual_machine(2, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]); // 3 elems, 24 bytes
                env.send(1, b).unwrap();
                let mut c = PackBuffer::new();
                c.push_raw(&[b'S', b'2', 0]);
                c.push_varint(300); // 1 elem, 3 header + 2 varint bytes
                env.send(1, c).unwrap();
            } else {
                env.recv(0).unwrap();
                env.recv(0).unwrap();
            }
        });
        let w = ledgers[0].wire();
        assert_eq!(
            w,
            WireStats {
                messages: 2,
                elements: 4,
                bytes: 29
            }
        );
        assert!(ledgers[1].wire().is_zero(), "receiving transmits nothing");
    }

    #[test]
    fn wire_stats_count_retransmissions() {
        let plan = FaultPlan::new(0).with_drop(1.0);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                timeout_us: 10.0,
                backoff: 2.0,
            });
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                let _ = env.send(1, b);
            } else {
                let _ = env.recv(0);
            }
        });
        // 3 physical attempts of the same 3-element, 24-byte frame; the
        // poison frame is control traffic, not data.
        assert_eq!(
            ledgers[0].wire(),
            WireStats {
                messages: 3,
                elements: 9,
                bytes: 72
            }
        );
    }

    #[test]
    fn arena_persists_across_runs() {
        let m = Multicomputer::virtual_machine(2, model());
        m.run(|env| {
            let mut b = env.arena().checkout(256);
            b.push_u64(env.rank() as u64);
            let arena = env.arena();
            arena.recycle(b);
        });
        // The second run sees the allocations recycled by the first.
        let pooled = m.run(|env| env.arena().pooled());
        assert_eq!(pooled, vec![1, 1]);
        assert_eq!(m.arena(0).pooled(), 1);
    }

    // ---- fault injection & reliable delivery ----

    use crate::fault::LinkProbs;

    /// A plan whose every decision is "no fault": exercises the reliable
    /// layer (CRC, acks) without any injected trouble.
    fn quiet_plan() -> FaultPlan {
        FaultPlan::new(1)
    }

    #[test]
    fn reliable_layer_round_trips_without_faults() {
        let m = Multicomputer::virtual_machine(2, model()).with_faults(quiet_plan());
        let (results, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                env.send(1, b).unwrap();
                0
            } else {
                env.recv(0).unwrap().payload.cursor().read_u64() as usize
            }
        });
        assert_eq!(results, vec![0, 1]);
        assert_eq!(ledgers[1].faults().acks, 1);
        assert_eq!(ledgers[1].faults().nacks, 0);
        assert!(ledgers[0].faults().is_quiet());
    }

    #[test]
    fn dropped_messages_are_retried_and_charged() {
        // Certain drop on the first attempt of every frame would livelock;
        // use a high-but-not-certain rate and a generous budget instead, on
        // a fixed seed so the test is stable.
        let plan = FaultPlan::new(7).with_drop(0.5);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 16,
                timeout_us: 50.0,
                backoff: 2.0,
            });
        let (results, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                for i in 0..20u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.send(1, b).unwrap();
                }
                Vec::new()
            } else {
                (0..20)
                    .map(|_| env.recv(0).unwrap().payload.cursor().read_u64())
                    .collect()
            }
        });
        assert_eq!(results[1], (0..20).collect::<Vec<_>>());
        let retries = ledgers[0].faults().retries;
        assert!(retries > 0, "a 50% drop rate must force retries");
        assert_eq!(
            ledgers[1].faults().drops,
            retries,
            "every retry answers one lost frame"
        );
        assert!(
            ledgers[0].get(Phase::Retry).as_micros() > 0.0,
            "retries must be charged"
        );
    }

    #[test]
    fn corrupted_messages_fail_crc_and_are_nacked() {
        let plan = FaultPlan::new(3).with_corrupt(0.5);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 16,
                timeout_us: 10.0,
                backoff: 1.5,
            });
        let (results, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                for i in 0..20u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i * 1000);
                    b.push_f64(i as f64);
                    env.send(1, b).unwrap();
                }
                Vec::new()
            } else {
                (0..20)
                    .map(|_| {
                        let msg = env.recv(0).unwrap();
                        let mut c = msg.payload.cursor();
                        (c.read_u64(), c.read_f64())
                    })
                    .collect()
            }
        });
        let want: Vec<(u64, f64)> = (0..20).map(|i| (i * 1000, i as f64)).collect();
        assert_eq!(results[1], want, "all payloads must arrive uncorrupted");
        assert!(
            ledgers[1].faults().corrupts > 0,
            "a 50% corrupt rate must hit some frames"
        );
        assert_eq!(ledgers[1].faults().nacks, ledgers[1].faults().corrupts);
        assert_eq!(ledgers[1].faults().acks, 20);
    }

    #[test]
    fn delayed_messages_arrive_late_but_intact() {
        let plan = FaultPlan::new(5).with_delay(1.0, 500.0);
        let m = Multicomputer::virtual_machine(2, model()).with_faults(plan);
        let (results, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64(9);
                env.send(1, b).unwrap();
                0.0
            } else {
                env.recv(0).unwrap();
                env.now().as_micros()
            }
        });
        // Send costs 10 + 1*2 = 12 µs, plus the injected 500 µs delay.
        assert!(
            results[1] >= 512.0,
            "receiver clock must include the delay, got {}",
            results[1]
        );
        assert_eq!(ledgers[1].faults().delays, 1);
    }

    #[test]
    fn retries_exhausted_errors_both_sides_without_deadlock() {
        let plan = FaultPlan::new(0).with_link(
            0,
            1,
            LinkProbs {
                drop: 1.0,
                ..Default::default()
            },
        );
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                timeout_us: 10.0,
                backoff: 2.0,
            });
        let results = m.run(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64(1);
                env.send(1, b).map(|_| 0u64).map_err(|e| e.to_string())
            } else {
                env.recv(0)
                    .map(|m| m.payload.cursor().read_u64())
                    .map_err(|e| e.to_string())
            }
        });
        let sender_err = results[0].clone().unwrap_err();
        let receiver_err = results[1].clone().unwrap_err();
        assert!(sender_err.contains("after 3 attempts"), "{sender_err}");
        assert!(receiver_err.contains("undelivered"), "{receiver_err}");
    }

    #[test]
    fn exhausted_send_charges_backoff_series() {
        let plan = FaultPlan::new(0).with_drop(1.0);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                timeout_us: 10.0,
                backoff: 2.0,
            });
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                let _ = env.send(1, b);
            } else {
                let _ = env.recv(0);
            }
        });
        // Attempt 0 books to Send (10 + 3*2 = 16 µs); attempts 1-2 book
        // their wire cost to Retry along with timeouts 10 and 20 µs:
        // Retry = 16 + 16 + 10 + 20 = 62 µs.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 16.0);
        assert_eq!(ledgers[0].get(Phase::Retry).as_micros(), 62.0);
        assert_eq!(ledgers[0].faults().retries, 2);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run_once = || {
            let plan = FaultPlan::new(11)
                .with_drop(0.3)
                .with_corrupt(0.2)
                .with_delay(0.1, 80.0);
            let m = Multicomputer::virtual_machine(3, model())
                .with_faults(plan)
                .with_retry_policy(RetryPolicy {
                    max_retries: 20,
                    timeout_us: 25.0,
                    backoff: 2.0,
                });
            m.run_with_ledgers(|env| {
                if env.rank() == 0 {
                    for dst in 1..env.nprocs() {
                        for i in 0..10u64 {
                            let mut b = PackBuffer::new();
                            b.push_u64_slice(&[i; 5]);
                            env.send(dst, b).unwrap();
                        }
                    }
                    0
                } else {
                    (0..10)
                        .map(|_| env.recv(0).unwrap().payload.elem_count())
                        .sum::<u64>()
                }
            })
        };
        let (ra, la) = run_once();
        let (rb, lb) = run_once();
        assert_eq!(ra, rb);
        assert_eq!(
            la, lb,
            "ledgers (including fault stats) must be byte-identical"
        );
    }

    #[test]
    fn dead_peer_errors_immediately() {
        let plan = FaultPlan::new(0).with_dead_rank(1);
        let m = Multicomputer::virtual_machine(3, model()).with_faults(plan);
        let results = m.run(|env| {
            if env.rank() == 0 {
                let send_err = env.send(1, PackBuffer::new()).unwrap_err();
                let recv_err = env.recv(1).unwrap_err();
                assert_eq!(send_err, CommError::PeerDead { rank: 1 });
                assert_eq!(recv_err, CommError::PeerDead { rank: 1 });
                // Traffic to live ranks is unaffected.
                env.send(2, PackBuffer::new()).unwrap();
                "sent"
            } else if env.rank() == 2 {
                env.recv(0).unwrap();
                "got"
            } else {
                // The dead rank itself cannot communicate.
                assert!(env.send(0, PackBuffer::new()).is_err());
                "dead"
            }
        });
        assert_eq!(results, vec!["sent", "dead", "got"]);
    }

    #[test]
    fn alive_ranks_reflect_plan() {
        let plan = FaultPlan::new(0).with_dead_rank(0).with_dead_rank(2);
        let m = Multicomputer::virtual_machine(4, model()).with_faults(plan);
        let alive = m.run(|env| (env.alive_ranks(), env.is_rank_dead(env.rank())));
        assert_eq!(alive[1].0, vec![1, 3]);
        assert_eq!(
            alive.iter().map(|(_, dead)| *dead).collect::<Vec<_>>(),
            vec![true, false, true, false]
        );
    }

    #[test]
    fn wall_clock_mode_recovers_from_faults_too() {
        let plan = FaultPlan::new(21).with_drop(0.4).with_corrupt(0.2);
        let m = Multicomputer::wall_clock(2)
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 24,
                timeout_us: 1.0,
                backoff: 1.1,
            });
        let results = m.run(|env| {
            if env.rank() == 0 {
                for i in 0..30u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.send(1, b).unwrap();
                }
                0
            } else {
                (0..30)
                    .map(|_| env.recv(0).unwrap().payload.cursor().read_u64())
                    .sum::<u64>()
            }
        });
        assert_eq!(results[1], (0..30).sum::<u64>());
    }

    // ---- nonblocking sends (isend / wait_all / irecv) ----

    #[test]
    fn isend_overlaps_compute_with_transfer() {
        // Sender posts a 5-elem message (cost 20 µs), computes 12 µs while
        // the NIC drains, then waits: makespan is max(20, 12) = 20 µs, not
        // the blocking 20 + 12 = 32 µs.
        let m = Multicomputer::virtual_machine(2, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3, 4, 5]);
                env.phase(Phase::Send, |env| env.isend(1, b)).unwrap();
                env.phase(Phase::Encode, |env| env.charge_ops(12));
                env.phase(Phase::Send, |env| env.wait_all());
            } else {
                env.recv(0).unwrap();
            }
        });
        // isend itself is free; wait_all books the 20 − 12 = 8 µs drain.
        assert_eq!(ledgers[0].get(Phase::Encode).as_micros(), 12.0);
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 8.0);
        assert_eq!(ledgers[0].busy_total().as_micros(), 20.0);
        // The receiver still observes arrival at t = 20 µs.
        assert_eq!(ledgers[1].get(Phase::Wait).as_micros(), 20.0);
    }

    #[test]
    fn isend_serialises_on_the_nic_and_preserves_wire_stats() {
        // Two back-to-back posts share the outgoing link: arrivals at 20
        // and 20 + 12 = 32 µs, exactly the blocking totals — only the
        // sender-side attribution moves.
        let m = Multicomputer::virtual_machine(3, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut a = PackBuffer::new();
                a.push_u64_slice(&[1, 2, 3, 4, 5]); // 10 + 5·2 = 20 µs
                let mut b = PackBuffer::new();
                b.push_u64(9); // 10 + 1·2 = 12 µs
                env.phase(Phase::Send, |env| {
                    env.isend(1, a)?;
                    env.isend(2, b)?;
                    env.wait_all();
                    Ok::<(), CommError>(())
                })
                .unwrap();
            } else {
                env.recv(0).unwrap();
            }
        });
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 32.0);
        assert_eq!(
            ledgers[0].wire(),
            WireStats {
                messages: 2,
                elements: 6,
                bytes: 48
            }
        );
        assert_eq!(ledgers[1].get(Phase::Wait).as_micros(), 20.0);
        assert_eq!(ledgers[2].get(Phase::Wait).as_micros(), 32.0);
    }

    #[test]
    fn wait_all_is_a_noop_when_cpu_ran_past_the_nic() {
        let m = Multicomputer::virtual_machine(2, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                env.phase(Phase::Send, |env| env.isend(1, PackBuffer::new()))
                    .unwrap();
                env.charge_ops(1_000); // sails far past the 10 µs arrival
                env.phase(Phase::Send, |env| env.wait_all());
                env.wait_all(); // second drain: nothing left
            } else {
                env.recv(0).unwrap();
            }
        });
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 0.0);
        assert_eq!(ledgers[0].busy_total().as_micros(), 1_000.0);
    }

    // ---- async ARQ: nonblocking sends under a fault plan ----

    #[test]
    fn async_arq_matches_blocking_totals_when_not_overlapped() {
        // With no compute between the posts and the wait, the NIC schedule
        // is exactly the blocking sender's timeline, so the ledgers —
        // phases, wire stats, fault stats — must be bit-identical.
        let run = |nonblocking: bool| {
            let plan = FaultPlan::new(7).with_drop(0.5);
            let m = Multicomputer::virtual_machine(2, model())
                .with_faults(plan)
                .with_retry_policy(RetryPolicy {
                    max_retries: 16,
                    timeout_us: 50.0,
                    backoff: 2.0,
                });
            let (_, ledgers) = m.run_with_ledgers(move |env| {
                if env.rank() == 0 {
                    for i in 0..8u64 {
                        let mut b = PackBuffer::new();
                        b.push_u64(i);
                        if nonblocking {
                            env.phase(Phase::Send, |env| env.isend(1, b)).unwrap();
                        } else {
                            env.phase(Phase::Send, |env| env.send(1, b)).unwrap();
                        }
                    }
                    env.phase(Phase::Send, |env| env.wait_all());
                } else {
                    for _ in 0..8 {
                        env.recv(0).unwrap();
                    }
                }
            });
            ledgers
        };
        let (nb, blocking) = (run(true), run(false));
        assert!(
            blocking[0].faults().retries > 0,
            "the seed must actually force retries"
        );
        assert_eq!(nb, blocking);
    }

    #[test]
    fn async_arq_exhaustion_errors_at_post_time_and_charges_backoff_series() {
        // The nonblocking twin of exhausted_send_charges_backoff_series:
        // certain drop, 3 attempts of a 16 µs frame with 10/20 µs backoffs.
        // Exhaustion surfaces from isend itself; wait_all splits the drain
        // into Send = 16 and Retry = 16 + 10 + 16 + 20 = 62 µs.
        let plan = FaultPlan::new(0).with_drop(1.0);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                timeout_us: 10.0,
                backoff: 2.0,
            });
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                let err = env.phase(Phase::Send, |env| env.isend(1, b)).unwrap_err();
                assert!(matches!(
                    err,
                    CommError::RetriesExhausted { attempts: 3, .. }
                ));
                env.phase(Phase::Send, |env| env.wait_all());
            } else {
                let err = env.recv(0).unwrap_err();
                assert!(matches!(err, CommError::RetriesExhausted { .. }));
            }
        });
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 16.0);
        assert_eq!(ledgers[0].get(Phase::Retry).as_micros(), 62.0);
        assert_eq!(ledgers[0].faults().retries, 2);
        assert_eq!(
            ledgers[0].wire(),
            WireStats {
                messages: 3,
                elements: 9,
                bytes: 72
            }
        );
    }

    #[test]
    fn async_arq_recovery_hides_behind_compute() {
        // The point of the tentpole: ARQ recovery runs on the NIC while the
        // CPU computes, so a long enough compute block swallows wire time,
        // timeouts and retransmissions alike.
        let plan = FaultPlan::new(7).with_drop(0.3);
        let m = Multicomputer::virtual_machine(2, model())
            .with_faults(plan)
            .with_retry_policy(RetryPolicy {
                max_retries: 16,
                timeout_us: 10.0,
                backoff: 1.5,
            });
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                for i in 0..12u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.phase(Phase::Send, |env| env.isend(1, b)).unwrap();
                }
                env.phase(Phase::Encode, |env| env.charge_ops(10_000));
                env.phase(Phase::Send, |env| env.wait_all());
            } else {
                for _ in 0..12 {
                    env.recv(0).unwrap();
                }
            }
        });
        assert!(
            ledgers[0].faults().retries > 0,
            "a 30% drop rate over 12 messages must force retries"
        );
        // Everything the NIC did — including recovery — was hidden.
        assert_eq!(ledgers[0].get(Phase::Retry).as_micros(), 0.0);
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 0.0);
        assert_eq!(ledgers[0].busy_total().as_micros(), 10_000.0);
    }

    #[test]
    fn async_fault_runs_are_bit_deterministic() {
        let run_once = || {
            let plan = FaultPlan::new(11)
                .with_drop(0.3)
                .with_corrupt(0.2)
                .with_delay(0.1, 80.0);
            let m = Multicomputer::virtual_machine(3, model())
                .with_faults(plan)
                .with_retry_policy(RetryPolicy {
                    max_retries: 20,
                    timeout_us: 25.0,
                    backoff: 2.0,
                });
            m.run_with_ledgers(|env| {
                if env.rank() == 0 {
                    for dst in 1..env.nprocs() {
                        for i in 0..10u64 {
                            let mut b = PackBuffer::new();
                            b.push_u64_slice(&[i; 5]);
                            env.phase(Phase::Send, |env| env.isend(dst, b)).unwrap();
                        }
                        env.phase(Phase::Encode, |env| env.charge_ops(37));
                    }
                    env.phase(Phase::Send, |env| env.wait_all());
                    0
                } else {
                    (0..10)
                        .map(|_| env.recv(0).unwrap().payload.elem_count())
                        .sum::<u64>()
                }
            })
        };
        let (ra, la) = run_once();
        let (rb, lb) = run_once();
        assert_eq!(ra, rb);
        assert_eq!(la, lb, "async fault ledgers must be byte-identical");
        // And the data still arrives intact.
        assert_eq!(ra[1], 50);
        assert_eq!(ra[2], 50);
    }

    // ---- timed rank death ----

    #[test]
    fn sends_past_a_timed_death_error_on_both_sides() {
        // 1-elem frames cost 12 µs: the first lands at 12 ≤ 20, the second
        // would land at 24 > 20 — rank 1 is gone. The sender detects it,
        // the dying receiver observes it via the death notice.
        let plan = FaultPlan::new(0).with_death_at(1, 20.0);
        let m = Multicomputer::virtual_machine(2, model()).with_faults(plan);
        let results = m.run(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64(1);
                env.send(1, b).unwrap();
                let mut b = PackBuffer::new();
                b.push_u64(2);
                let err = env.send(1, b).unwrap_err();
                assert_eq!(err, CommError::PeerDead { rank: 1 });
                "detected"
            } else {
                assert_eq!(env.recv(0).unwrap().payload.cursor().read_u64(), 1);
                let err = env.recv(0).unwrap_err();
                assert_eq!(err, CommError::PeerDead { rank: 1 });
                "observed"
            }
        });
        assert_eq!(results, vec!["detected", "observed"]);
    }

    #[test]
    fn isend_respects_timed_death_on_the_nic_schedule() {
        // Both frames are posted at t = 0, but the NIC serialises them:
        // scheduled arrivals 12 and 24 µs, so the second post already
        // cannot land before rank 1 dies at t = 20.
        let plan = FaultPlan::new(0).with_death_at(1, 20.0);
        let m = Multicomputer::virtual_machine(2, model()).with_faults(plan);
        m.run(|env| {
            if env.rank() == 0 {
                env.phase(Phase::Send, |env| {
                    let mut b = PackBuffer::new();
                    b.push_u64(1);
                    env.isend(1, b).unwrap();
                    let mut b = PackBuffer::new();
                    b.push_u64(2);
                    let err = env.isend(1, b).unwrap_err();
                    assert_eq!(err, CommError::PeerDead { rank: 1 });
                    env.wait_all();
                });
            } else {
                env.recv(0).unwrap();
                let err = env.recv(0).unwrap_err();
                assert_eq!(err, CommError::PeerDead { rank: 1 });
            }
        });
    }

    #[test]
    fn a_rank_past_its_own_death_cannot_send() {
        let plan = FaultPlan::new(0).with_death_at(0, 50.0);
        let m = Multicomputer::virtual_machine(2, model()).with_faults(plan);
        m.run(|env| {
            if env.rank() == 0 {
                env.charge_ops(100); // sail past the death instant
                let err = env.send(1, PackBuffer::new()).unwrap_err();
                assert_eq!(err, CommError::PeerDead { rank: 0 });
            } else {
                let err = env.recv(0).unwrap_err();
                assert_eq!(err, CommError::PeerDead { rank: 0 });
            }
        });
    }

    #[test]
    fn timed_death_runs_are_deterministic() {
        let run_once = || {
            let plan = FaultPlan::new(3).with_drop(0.2).with_death_at(1, 300.0);
            let m = Multicomputer::virtual_machine(3, model())
                .with_faults(plan)
                .with_retry_policy(RetryPolicy::with_retries(10));
            m.run_with_ledgers(|env| {
                if env.rank() == 0 {
                    let mut delivered = 0u64;
                    for i in 0..20u64 {
                        let mut b = PackBuffer::new();
                        b.push_u64_slice(&[i; 4]);
                        let dst = 1 + (i % 2) as usize;
                        if env.send(dst, b).is_ok() {
                            delivered += 1;
                        }
                    }
                    delivered
                } else {
                    let mut got = 0u64;
                    while let Ok(m) = env.recv(0) {
                        got += m.payload.elem_count();
                    }
                    got
                }
            })
        };
        let (ra, la) = run_once();
        let (rb, lb) = run_once();
        assert_eq!(ra, rb);
        assert_eq!(la, lb);
        // Rank 2 outlives the run and keeps receiving after rank 1 died.
        assert!(ra[2] > ra[1], "{ra:?}");
    }

    // ---- watchdog ----

    #[test]
    fn watchdog_unblocks_a_protocol_stall() {
        // Both ranks wait on each other without anyone sending — a
        // deliberate protocol bug that would deadlock forever. The
        // watchdog turns it into a typed error.
        let m = Multicomputer::virtual_machine(2, model()).with_watchdog(Duration::from_millis(50));
        let results = m.run(|env| {
            let peer = 1 - env.rank();
            env.recv(peer)
                .map(|_| String::new())
                .unwrap_err()
                .to_string()
        });
        // Whichever rank times out first unblocks the other by dropping
        // its channels, so the peer may see a disconnect instead.
        for err in &results {
            assert!(err.contains("watchdog") || err.contains("hung up"), "{err}");
        }
        assert!(
            results.iter().any(|e| e.contains("watchdog")),
            "{results:?}"
        );
    }

    #[test]
    fn isend_works_in_wall_clock_mode() {
        let m = Multicomputer::wall_clock(2);
        let results = m.run(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64(41);
                env.isend(1, b).unwrap();
                env.wait_all();
                0
            } else {
                let h = env.irecv(0);
                env.wait_recv(h).unwrap().payload.cursor().read_u64()
            }
        });
        assert_eq!(results, vec![0, 41]);
    }

    #[test]
    fn irecv_completes_in_fifo_order() {
        let m = Multicomputer::virtual_machine(2, model());
        let results = m.run(|env| {
            if env.rank() == 0 {
                for i in 0..3u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.isend(1, b).unwrap();
                }
                env.wait_all();
                Vec::new()
            } else {
                let handles: Vec<_> = (0..3).map(|_| env.irecv(0)).collect();
                handles
                    .into_iter()
                    .map(|h| env.wait_recv(h).unwrap().payload.cursor().read_u64())
                    .collect()
            }
        });
        assert_eq!(results[1], vec![0, 1, 2]);
    }

    // ---- task engine (run_tasks / event loop) ----

    /// A rank program exercising sends, faults and async receives: rank 0
    /// fans out batches, everyone else receives until their link closes.
    fn fan_out_task<'e>(env: &'e mut Env) -> Pin<Box<dyn Future<Output = u64> + 'e>> {
        Box::pin(async move {
            if env.rank() == 0 {
                let mut delivered = 0u64;
                for dst in 1..env.nprocs() {
                    for i in 0..4u64 {
                        let mut b = PackBuffer::new();
                        b.push_u64_slice(&[i; 3]);
                        if env.phase(Phase::Send, |env| env.send(dst, b)).is_ok() {
                            delivered += 1;
                        }
                    }
                }
                delivered
            } else {
                let mut got = 0u64;
                for _ in 0..4 {
                    match env.recv_async(0).await {
                        Ok(m) => got += m.payload.elem_count(),
                        Err(_) => break,
                    }
                }
                got
            }
        })
    }

    #[test]
    fn task_engine_auto_selects_by_size_and_mode() {
        let small = Multicomputer::virtual_machine(8, model());
        assert_eq!(small.task_engine(), EngineKind::Threaded);
        let big = Multicomputer::virtual_machine(4096, model());
        assert_eq!(big.task_engine(), EngineKind::EventLoop);
        // Wall-clock mode has no virtual timeline for the event loop.
        let wall = Multicomputer::wall_clock(8).with_engine(EngineKind::EventLoop);
        assert_eq!(wall.task_engine(), EngineKind::Threaded);
    }

    #[test]
    fn event_loop_matches_threaded_results_and_ledgers() {
        let run = |kind: EngineKind| {
            let m = Multicomputer::virtual_machine(6, model()).with_engine(kind);
            m.run_tasks_with_ledgers(&(), |(), env| fan_out_task(env))
        };
        let (rt, lt) = run(EngineKind::Threaded);
        let (re, le) = run(EngineKind::EventLoop);
        assert_eq!(rt, re);
        assert_eq!(lt, le, "event-loop ledgers must be bit-identical");
        assert_eq!(rt[1], 12, "4 messages x 3 elements each");
    }

    #[test]
    fn event_loop_matches_threaded_under_faults() {
        let run = |kind: EngineKind| {
            let plan = FaultPlan::new(11)
                .with_drop(0.3)
                .with_corrupt(0.2)
                .with_delay(0.1, 80.0);
            let m = Multicomputer::virtual_machine(4, model())
                .with_engine(kind)
                .with_faults(plan)
                .with_retry_policy(RetryPolicy {
                    max_retries: 20,
                    timeout_us: 25.0,
                    backoff: 2.0,
                });
            m.run_tasks_with_ledgers(&(), |(), env| fan_out_task(env))
        };
        let (rt, lt) = run(EngineKind::Threaded);
        let (re, le) = run(EngineKind::EventLoop);
        assert_eq!(rt, re);
        assert_eq!(lt, le, "faulted event-loop ledgers must be bit-identical");
        assert!(
            lt[0].faults().retries > 0,
            "the seed must actually force retries"
        );
    }

    #[test]
    fn event_loop_runs_ten_thousand_ranks() {
        // Far past any OS thread limit: a 10k-rank ring relay on one
        // thread. Rank 0 seeds the token; everyone adds one and forwards.
        let m = Multicomputer::virtual_machine(10_000, model());
        assert_eq!(m.task_engine(), EngineKind::EventLoop);
        let results = m.run_tasks(&(), |(), env| {
            Box::pin(async move {
                let me = env.rank();
                let p = env.nprocs();
                if me == 0 {
                    let mut b = PackBuffer::new();
                    b.push_u64(0);
                    env.send(1, b).unwrap();
                    0
                } else {
                    let got = env.recv_async(me - 1).await.unwrap();
                    let v = got.payload.cursor().read_u64() + 1;
                    if me + 1 < p {
                        let mut b = PackBuffer::new();
                        b.push_u64(v);
                        env.send(me + 1, b).unwrap();
                    }
                    v
                }
            })
        });
        assert_eq!(results[9_999], 9_999);
    }

    #[test]
    fn event_loop_detects_protocol_stalls_structurally() {
        // The deadlock of watchdog_unblocks_a_protocol_stall, but on the
        // event loop: detection is structural (everyone parked), so no
        // wall-clock watchdog is needed and no real time is burned.
        let m = Multicomputer::virtual_machine(2, model()).with_engine(EngineKind::EventLoop);
        let results = m.run_tasks(&(), |(), env| {
            Box::pin(async move {
                let peer = 1 - env.rank();
                env.recv_async(peer).await.unwrap_err().to_string()
            })
        });
        // Whichever rank errors out first closes its links; the peer may
        // observe either the stall or the disconnect.
        for err in &results {
            assert!(err.contains("watchdog") || err.contains("hung up"), "{err}");
        }
        assert!(
            results.iter().any(|e| e.contains("watchdog")),
            "{results:?}"
        );
    }

    #[test]
    fn event_loop_preserves_traces() {
        use crate::trace::MemorySink;
        let run = |kind: EngineKind| {
            let sink = Arc::new(MemorySink::new());
            let m = Multicomputer::virtual_machine(3, model())
                .with_engine(kind)
                .with_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
            m.run_tasks(&(), |(), env| fan_out_task(env));
            sink.take()
        };
        let threaded = run(EngineKind::Threaded);
        let event = run(EngineKind::EventLoop);
        assert_eq!(threaded.len(), 3);
        assert_eq!(threaded, event, "traces must be identical across engines");
    }

    #[test]
    #[should_panic(expected = "threaded engine supports at most")]
    fn threaded_closure_engine_rejects_oversized_machines() {
        let m = Multicomputer::virtual_machine(2048, model());
        let _ = m.run(|env| env.rank());
    }

    #[test]
    fn isend_to_dead_rank_errors() {
        let plan = FaultPlan::new(0).with_dead_rank(1);
        let m = Multicomputer::virtual_machine(2, model()).with_faults(plan);
        let errs = m.run(|env| {
            if env.rank() == 0 {
                matches!(
                    env.isend(1, PackBuffer::new()),
                    Err(CommError::PeerDead { rank: 1 })
                )
            } else {
                true
            }
        });
        assert!(errs[0]);
    }
}
