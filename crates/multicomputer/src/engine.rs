//! The SPMD engine: one thread per simulated processor, point-to-point
//! message channels, and a per-processor clock.
//!
//! # Timing modes
//!
//! In **virtual mode** every cost is *charged*: [`Env::charge_ops`] advances
//! the local clock by `n × T_Operation`, and [`Env::send`] advances it by
//! `T_Startup + elems × T_Data`. A message records the sender's clock after
//! the charge as its arrival time; [`Env::recv`] synchronises the
//! receiver's clock to `max(local, arrival)` and books the jump as
//! [`Phase::Wait`]. Because the arrival times depend only on message
//! causality, the resulting ledgers are fully deterministic no matter how
//! the host schedules the threads.
//!
//! In **wall-clock mode** the clock is the host's monotonic clock; charges
//! are no-ops (real work takes real time) and [`Env::phase`] measures the
//! elapsed wall time of its body. An optional per-element wire delay can be
//! injected into `send` to emulate an interconnect slower than shared
//! memory.

use crate::model::MachineModel;
use crate::pack::PackBuffer;
use crate::topology::Topology;
use crate::time::VirtualTime;
use crate::timing::{Phase, PhaseLedger};

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::Instant;

/// How the machine keeps time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimingMode {
    /// Deterministic virtual-time accounting under an α-β model.
    Virtual(MachineModel),
    /// Real wall-clock measurement, with an optional injected wire cost of
    /// `wire_ns_per_elem` nanoseconds per transmitted element (busy-wait at
    /// the sender, emulating the wire occupancy of a real interconnect).
    WallClock {
        /// Injected per-element send cost in nanoseconds (0 = pure shared
        /// memory).
        wire_ns_per_elem: u64,
        /// Injected per-message startup cost in nanoseconds.
        wire_ns_startup: u64,
    },
}

impl TimingMode {
    /// Wall-clock mode with no injected wire cost.
    pub fn wall() -> Self {
        TimingMode::WallClock { wire_ns_per_elem: 0, wire_ns_startup: 0 }
    }
}

/// A message in flight between two simulated processors.
#[derive(Debug, Clone)]
pub struct Message {
    /// Which rank sent this message.
    pub src: usize,
    /// The packed payload.
    pub payload: PackBuffer,
    /// Sender-side clock at the moment transmission completed (virtual
    /// mode only; `ZERO` in wall-clock mode).
    pub arrival: VirtualTime,
}

/// A simulated distributed-memory machine with `p` processors.
pub struct Multicomputer {
    nprocs: usize,
    mode: TimingMode,
    topology: Topology,
}

impl Multicomputer {
    /// A machine whose time is simulated under `model` (fully connected
    /// interconnect, as in the paper).
    pub fn virtual_machine(nprocs: usize, model: MachineModel) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::Virtual(model), Topology::FullyConnected)
    }

    /// A virtual machine on an explicit interconnect [`Topology`]; message
    /// costs become `T_Startup + hops·T_Hop + elems·T_Data`.
    pub fn virtual_with_topology(nprocs: usize, model: MachineModel, topology: Topology) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::Virtual(model), topology)
    }

    /// A machine measured with the host's wall clock.
    pub fn wall_clock(nprocs: usize) -> Self {
        Multicomputer::with_topology(nprocs, TimingMode::wall(), Topology::FullyConnected)
    }

    /// A machine with an explicit [`TimingMode`].
    pub fn with_mode(nprocs: usize, mode: TimingMode) -> Self {
        Multicomputer::with_topology(nprocs, mode, Topology::FullyConnected)
    }

    /// The fully general constructor.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero or the topology's grid does not match.
    pub fn with_topology(nprocs: usize, mode: TimingMode, topology: Topology) -> Self {
        assert!(nprocs > 0, "a multicomputer needs at least one processor");
        // Validate grid topologies eagerly (hops would panic lazily).
        if let Topology::Mesh2D { pr, pc } | Topology::Torus2D { pr, pc } = topology {
            assert_eq!(pr * pc, nprocs, "topology grid {pr}x{pc} != {nprocs} processors");
        }
        Multicomputer { nprocs, mode, topology }
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The machine's timing mode.
    pub fn mode(&self) -> TimingMode {
        self.mode
    }

    /// Run `f` in SPMD style on every processor and collect the return
    /// values in rank order. Each invocation gets an [`Env`] holding that
    /// rank's channels, clock and ledger.
    ///
    /// # Panics
    /// Propagates a panic from any processor's closure.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&mut Env) -> R + Sync,
        R: Send,
    {
        self.run_with_ledgers(f).0
    }

    /// Like [`Multicomputer::run`], but also returns each rank's
    /// [`PhaseLedger`] — the usual entry point for scheme drivers.
    pub fn run_with_ledgers<F, R>(&self, f: F) -> (Vec<R>, Vec<PhaseLedger>)
    where
        F: Fn(&mut Env) -> R + Sync,
        R: Send,
    {
        let p = self.nprocs;
        // chans[src][dst]
        let mut senders: Vec<Vec<Sender<Message>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Message>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for (src, sender_row) in senders.iter_mut().enumerate() {
            for receiver_row in receivers.iter_mut() {
                let (tx, rx) = unbounded();
                sender_row.push(tx);
                receiver_row[src] = Some(rx);
            }
        }

        let f = &f;
        let mode = self.mode;
        let topology = self.topology;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, (tx_row, rx_row)) in senders.into_iter().zip(receivers).enumerate() {
                let rx_row: Vec<Receiver<Message>> =
                    rx_row.into_iter().map(|r| r.expect("channel matrix fully populated")).collect();
                handles.push(scope.spawn(move || {
                    let mut env = Env::new(rank, p, mode, topology, tx_row, rx_row);
                    let out = f(&mut env);
                    let ledger = env.into_ledger();
                    (out, ledger)
                }));
            }
            let mut results = Vec::with_capacity(p);
            let mut ledgers = Vec::with_capacity(p);
            for h in handles {
                let (r, l) = h.join().expect("simulated processor panicked");
                results.push(r);
                ledgers.push(l);
            }
            (results, ledgers)
        })
    }
}

enum Clock {
    Virtual { now: VirtualTime, model: MachineModel },
    Wall { epoch: Instant },
}

/// One simulated processor's execution environment: its rank, its channels
/// to every peer, its clock, and its phase ledger.
pub struct Env {
    rank: usize,
    nprocs: usize,
    topology: Topology,
    clock: Clock,
    wire_ns_per_elem: u64,
    wire_ns_startup: u64,
    ledger: PhaseLedger,
    current_phase: Phase,
    senders: Vec<Sender<Message>>,
    receivers: Vec<Receiver<Message>>,
}

impl Env {
    fn new(
        rank: usize,
        nprocs: usize,
        mode: TimingMode,
        topology: Topology,
        senders: Vec<Sender<Message>>,
        receivers: Vec<Receiver<Message>>,
    ) -> Self {
        let (clock, wire_ns_per_elem, wire_ns_startup) = match mode {
            TimingMode::Virtual(model) => (Clock::Virtual { now: VirtualTime::ZERO, model }, 0, 0),
            TimingMode::WallClock { wire_ns_per_elem, wire_ns_startup } => {
                (Clock::Wall { epoch: Instant::now() }, wire_ns_per_elem, wire_ns_startup)
            }
        };
        Env {
            rank,
            nprocs,
            topology,
            clock,
            wire_ns_per_elem,
            wire_ns_startup,
            ledger: PhaseLedger::new(),
            current_phase: Phase::Other,
            senders,
            receivers,
        }
    }

    /// This processor's rank, `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processors in the machine.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// True in virtual-time mode.
    pub fn is_virtual(&self) -> bool {
        matches!(self.clock, Clock::Virtual { .. })
    }

    /// Current local clock reading.
    pub fn now(&self) -> VirtualTime {
        match &self.clock {
            Clock::Virtual { now, .. } => *now,
            Clock::Wall { epoch } => VirtualTime::from_micros(epoch.elapsed().as_secs_f64() * 1e6),
        }
    }

    /// Run `f` attributed to `phase`.
    ///
    /// Virtual mode: sets the current phase so [`Env::charge_ops`] books
    /// into it. Wall mode: measures the body's elapsed wall time into the
    /// ledger (charges are no-ops there).
    pub fn phase<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Env) -> T) -> T {
        let prev = self.current_phase;
        self.current_phase = phase;
        let wall_start = match &self.clock {
            Clock::Wall { epoch } => Some((*epoch, epoch.elapsed())),
            Clock::Virtual { .. } => None,
        };
        let out = f(self);
        if let Some((epoch, start)) = wall_start {
            let span = epoch.elapsed().saturating_sub(start);
            self.ledger
                .record(phase, VirtualTime::from_micros(span.as_secs_f64() * 1e6));
        }
        self.current_phase = prev;
        out
    }

    /// Charge `n` element operations (`n × T_Operation`) to the local clock
    /// and the current phase. No-op in wall-clock mode.
    pub fn charge_ops(&mut self, n: u64) {
        if let Clock::Virtual { now, model } = &mut self.clock {
            let cost = model.op_cost(n);
            *now += cost;
            self.ledger.record(self.current_phase, cost);
        }
    }

    /// Send `payload` to `dst`.
    ///
    /// Virtual mode: charges `T_Startup + elems × T_Data` to the local
    /// clock, attributed to [`Phase::Send`], and stamps the message with
    /// the post-charge clock as its arrival time. Wall mode: optionally
    /// busy-waits the configured wire cost, then moves the buffer.
    pub fn send(&mut self, dst: usize, payload: PackBuffer) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        let hops = self.topology.hops(self.rank, dst, self.nprocs);
        let arrival = match &mut self.clock {
            Clock::Virtual { now, model } => {
                let cost = model.message_cost_hops(payload.elem_count(), hops.max(1));
                *now += cost;
                self.ledger.record(Phase::Send, cost);
                *now
            }
            Clock::Wall { .. } => {
                let ns = self.wire_ns_startup + self.wire_ns_per_elem * payload.elem_count();
                if ns > 0 {
                    let start = Instant::now();
                    while (start.elapsed().as_nanos() as u64) < ns {
                        std::hint::spin_loop();
                    }
                }
                VirtualTime::ZERO
            }
        };
        self.senders[dst]
            .send(Message { src: self.rank, payload, arrival })
            .expect("receiver hung up: peer processor exited early");
    }

    /// Blocking receive of the next message from `src`.
    ///
    /// Virtual mode: synchronises the local clock with the message's
    /// arrival time; any forward jump is booked as [`Phase::Wait`].
    pub fn recv(&mut self, src: usize) -> Message {
        assert!(src < self.nprocs, "recv from rank {src} of {}", self.nprocs);
        let msg = self.receivers[src]
            .recv()
            .expect("sender hung up: peer processor exited early");
        if let Clock::Virtual { now, .. } = &mut self.clock {
            let jump = msg.arrival.saturating_sub(*now);
            *now = now.max(msg.arrival);
            self.ledger.record(Phase::Wait, jump);
        }
        msg
    }

    /// Immutable view of the ledger accumulated so far.
    pub fn ledger(&self) -> &PhaseLedger {
        &self.ledger
    }

    fn into_ledger(self) -> PhaseLedger {
        self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MachineModel {
        MachineModel::new(10.0, 2.0, 1.0)
    }

    #[test]
    fn ranks_and_sizes() {
        let m = Multicomputer::virtual_machine(5, model());
        let ranks = m.run(|env| {
            assert_eq!(env.nprocs(), 5);
            env.rank()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn point_to_point_round_trip() {
        let m = Multicomputer::virtual_machine(2, model());
        let results = m.run(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_f64(3.25);
                env.send(1, b);
                let back = env.recv(1);
                back.payload.cursor().read_f64()
            } else {
                let msg = env.recv(0);
                let v = msg.payload.cursor().read_f64();
                let mut b = PackBuffer::new();
                b.push_f64(v * 2.0);
                env.send(0, b);
                v
            }
        });
        assert_eq!(results, vec![6.5, 3.25]);
    }

    #[test]
    fn virtual_send_cost_is_charged() {
        let m = Multicomputer::virtual_machine(2, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3, 4, 5]);
                env.send(1, b);
            } else {
                env.recv(0);
            }
        });
        // t_startup + 5 elems * t_data = 10 + 10 = 20 µs at the sender.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 20.0);
        // Receiver started at 0 and the message arrived at 20: 20 µs wait.
        assert_eq!(ledgers[1].get(Phase::Wait).as_micros(), 20.0);
    }

    #[test]
    fn charge_ops_books_current_phase() {
        let m = Multicomputer::virtual_machine(1, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Compress, |env| env.charge_ops(7));
            env.charge_ops(3); // outside any phase block -> Other
        });
        assert_eq!(ledgers[0].get(Phase::Compress).as_micros(), 7.0);
        assert_eq!(ledgers[0].get(Phase::Other).as_micros(), 3.0);
    }

    #[test]
    fn virtual_clocks_are_deterministic() {
        // Arrival times depend only on causality, so repeated runs agree
        // exactly even under different host scheduling.
        let run_once = || {
            let m = Multicomputer::virtual_machine(4, model());
            let (_, ledgers) = m.run_with_ledgers(|env| {
                if env.rank() == 0 {
                    for dst in 1..env.nprocs() {
                        let mut b = PackBuffer::new();
                        b.push_u64_slice(&vec![0; dst * 10]);
                        env.send(dst, b);
                    }
                } else {
                    env.recv(0);
                    env.charge_ops(100);
                }
            });
            ledgers
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn self_send_works() {
        let m = Multicomputer::virtual_machine(3, model());
        let results = m.run(|env| {
            let mut b = PackBuffer::new();
            b.push_u64(env.rank() as u64);
            env.send(env.rank(), b);
            env.recv(env.rank()).payload.cursor().read_u64()
        });
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn wall_clock_phase_measures_time() {
        let m = Multicomputer::wall_clock(1);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Compute, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(ledgers[0].get(Phase::Compute).as_millis() >= 4.0);
    }

    #[test]
    fn wall_clock_charges_are_noop() {
        let m = Multicomputer::wall_clock(1);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.charge_ops(1_000_000_000);
        });
        // charge_ops must not book anything in wall mode.
        assert_eq!(ledgers[0].get(Phase::Other).as_micros(), 0.0);
    }

    #[test]
    fn messages_from_same_source_preserve_order() {
        let m = Multicomputer::virtual_machine(2, model());
        let results = m.run(|env| {
            if env.rank() == 0 {
                for i in 0..10u64 {
                    let mut b = PackBuffer::new();
                    b.push_u64(i);
                    env.send(1, b);
                }
                Vec::new()
            } else {
                (0..10).map(|_| env.recv(0).payload.cursor().read_u64()).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn message_src_is_stamped() {
        let m = Multicomputer::virtual_machine(3, model());
        let results = m.run(|env| {
            if env.rank() == 2 {
                let a = env.recv(0).src;
                let b = env.recv(1).src;
                (a, b)
            } else {
                env.send(2, PackBuffer::new());
                (usize::MAX, usize::MAX)
            }
        });
        assert_eq!(results[2], (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = Multicomputer::virtual_machine(0, model());
    }

    #[test]
    fn topology_hop_cost_charged_on_send() {
        // Ring of 4 with t_hop = 5: 0→2 is 2 hops.
        let hop_model = MachineModel::new(10.0, 2.0, 1.0).with_hop_cost(5.0);
        let m = Multicomputer::virtual_with_topology(4, hop_model, Topology::Ring);
        let (_, ledgers) = m.run_with_ledgers(|env| {
            if env.rank() == 0 {
                let mut b = PackBuffer::new();
                b.push_u64_slice(&[1, 2, 3]);
                env.send(2, b);
            } else if env.rank() == 2 {
                env.recv(0);
            }
        });
        // 10 startup + 2 hops * 5 + 3 elems * 2 = 26 µs.
        assert_eq!(ledgers[0].get(Phase::Send).as_micros(), 26.0);
    }

    #[test]
    #[should_panic(expected = "topology grid")]
    fn mismatched_topology_grid_rejected() {
        let _ =
            Multicomputer::virtual_with_topology(6, model(), Topology::Mesh2D { pr: 2, pc: 2 });
    }

    #[test]
    fn nested_phases_restore_outer() {
        let m = Multicomputer::virtual_machine(1, model());
        let (_, ledgers) = m.run_with_ledgers(|env| {
            env.phase(Phase::Pack, |env| {
                env.charge_ops(1);
                env.phase(Phase::Unpack, |env| env.charge_ops(2));
                env.charge_ops(4);
            });
        });
        assert_eq!(ledgers[0].get(Phase::Pack).as_micros(), 5.0);
        assert_eq!(ledgers[0].get(Phase::Unpack).as_micros(), 2.0);
    }
}
