//! Virtual-clock tracing and per-rank metrics.
//!
//! The paper's whole argument is a time decomposition — `T_Distribution`
//! vs `T_Compression` per scheme — but the [`crate::timing::PhaseLedger`]
//! only keeps end-of-run totals. This module records *where inside a run*
//! time and bytes go: every [`crate::engine::Env::phase`] block, every
//! physical transmission, every ARQ timeout and every clock-sync wait
//! becomes a [`Span`] with virtual-clock start/end stamps, and per-rank
//! counters/histograms accumulate in a [`MetricsRegistry`].
//!
//! # Determinism rules
//!
//! Tracing is **observational**: it never charges the virtual clock, never
//! reorders an existing charge, and is collected per rank on that rank's
//! own thread. With no sink installed (or a disabled one such as
//! [`NullSink`]) no tracer is allocated at all, so ledgers and clocks are
//! byte-identical to an untraced run. With a sink attached the clocks are
//! *still* identical — the spans are a pure function of the charges.
//!
//! Work mapped over parts on scoped host threads (`map_parts` in
//! `sparsedist-core`) reports per-part op counts merged in part order, and
//! the enclosing phase span is subdivided proportionally into child spans
//! — the same subdivision a sequential execution would produce, so
//! sequential and parallel runs yield identical span sets.
//!
//! # Sinks and exporters
//!
//! A [`TraceSink`] receives one [`RankTrace`] per rank, in rank order,
//! after the SPMD closure joins. [`MemorySink`] buffers them for
//! inspection; [`chrome_trace_json`] renders a `chrome://tracing` /
//! Perfetto-loadable JSON, [`metrics_json`] a flat metrics document, and
//! [`render_waterfall`] / [`render_phase_table`] text views for the CLI.

use crate::time::VirtualTime;
use crate::timing::{Phase, PhaseLedger, WireStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One traced interval on one simulated processor.
///
/// `ops` counts the element-operations charged between the span's open and
/// close; `wire` counts the physical transmissions in the same window.
/// Child spans produced by per-part subdivision carry their part's share.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The rank the span was recorded on.
    pub rank: usize,
    /// The phase the work was attributed to.
    pub phase: Phase,
    /// The scheme (or driver) scope active when the span opened — `"SFC"`,
    /// `"ED-multi"`, `"redistribute"`, … — `""` outside any driver.
    pub scope: &'static str,
    /// Detail label: `""` for a plain phase block, `"part3"` for a
    /// per-part child, `"->2"` / `"<-0"` for wire traffic, `"timeout->1"`
    /// for ARQ backoff, or a collective's name.
    pub label: String,
    /// Virtual-clock reading when the span opened.
    pub start: VirtualTime,
    /// Virtual-clock reading when the span closed.
    pub end: VirtualTime,
    /// Element-operations charged inside the span.
    pub ops: u64,
    /// Physical transmissions inside the span.
    pub wire: WireStats,
}

impl Span {
    /// The span's duration.
    pub fn duration(&self) -> VirtualTime {
        self.end.saturating_sub(self.start)
    }

    /// True when the span carries no time, no ops and no wire traffic.
    fn is_empty(&self) -> bool {
        self.duration().as_micros() == 0.0 && self.ops == 0 && self.wire.is_zero()
    }
}

/// A power-of-two histogram: bucket `0` counts zeros, bucket `b ≥ 1`
/// counts values in `[2^(b-1), 2^b)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { 64 - v.leading_zeros() };
        *self.buckets.entry(bucket).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty `(bucket, count)` pairs, ascending by bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_floor(bucket: u32) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }
}

/// Deterministic per-rank counters and histograms.
///
/// Keys are sorted (`BTreeMap`), so exports are byte-stable for a given
/// run. Counters cover cumulative totals (`ops.total`, `wire.bytes`,
/// `arena.checkouts`, fault counts); histograms cover distributions
/// (per-message element counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `v` to the counter `name`.
    pub fn count(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Record `v` into the histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// A counter's value (0 when never counted).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if any value was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }
}

/// Everything one rank recorded during one SPMD run: its spans in
/// emission order, its metrics, and a copy of its [`PhaseLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankTrace {
    /// The rank.
    pub rank: usize,
    /// Spans in emission (close) order.
    pub spans: Vec<Span>,
    /// Counters and histograms.
    pub metrics: MetricsRegistry,
    /// The rank's phase ledger, as returned by the run.
    pub ledger: PhaseLedger,
}

/// Where completed rank traces go.
///
/// [`crate::engine::Multicomputer::run_with_ledgers`] calls
/// [`TraceSink::record`] once per rank, in rank order, after every rank's
/// closure has joined — sinks never observe a half-finished run and never
/// need internal ordering logic.
pub trait TraceSink: Send + Sync {
    /// When false, the engine allocates no tracer at all: zero overhead,
    /// bit-identical clocks. Defaults to true.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Receive one completed rank trace.
    fn record(&self, trace: RankTrace);
}

/// The default sink: disabled, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _trace: RankTrace) {}
}

/// A sink that buffers every rank trace in memory for later export.
#[derive(Debug, Default)]
pub struct MemorySink {
    traces: Mutex<Vec<RankTrace>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Drain the buffered traces, sorted by rank.
    pub fn take(&self) -> Vec<RankTrace> {
        // lint: allow(E002) — a poisoned sink means a rank panicked; propagate
        let mut traces = std::mem::take(&mut *self.traces.lock().expect("trace sink poisoned"));
        traces.sort_by_key(|t| t.rank);
        traces
    }
}

impl TraceSink for MemorySink {
    fn record(&self, trace: RankTrace) {
        // lint: allow(E002) — a poisoned sink means a rank panicked; propagate
        self.traces.lock().expect("trace sink poisoned").push(trace);
    }
}

/// An open span on the tracer's stack.
#[derive(Debug)]
struct OpenSpan {
    phase: Phase,
    scope: &'static str,
    label: String,
    start: VirtualTime,
    ops0: u64,
    wire0: WireStats,
    /// `(part id, ops)` pairs attached by `part_ops`: the span subdivides
    /// into per-part children proportionally on close.
    parts: Option<Vec<(usize, u64)>>,
}

/// The per-rank recorder the engine drives. Only allocated when an enabled
/// sink is installed; every `Env` hot-path hook checks for `None` first.
#[derive(Debug)]
pub(crate) struct Tracer {
    rank: usize,
    scope: &'static str,
    spans: Vec<Span>,
    metrics: MetricsRegistry,
    open: Vec<OpenSpan>,
    /// Cumulative element-operations observed via `note_ops`.
    ops_total: u64,
}

impl Tracer {
    pub(crate) fn new(rank: usize) -> Self {
        Tracer {
            rank,
            scope: "",
            spans: Vec::new(),
            metrics: MetricsRegistry::new(),
            open: Vec::new(),
            ops_total: 0,
        }
    }

    pub(crate) fn set_scope(&mut self, scope: &'static str) {
        self.scope = scope;
    }

    pub(crate) fn note_ops(&mut self, n: u64) {
        self.ops_total += n;
    }

    pub(crate) fn open(&mut self, phase: Phase, label: String, now: VirtualTime, wire: WireStats) {
        self.open.push(OpenSpan {
            phase,
            scope: self.scope,
            label,
            start: now,
            ops0: self.ops_total,
            wire0: wire,
            parts: None,
        });
    }

    /// Attach `(part id, ops)` pairs to the innermost open span; it emits
    /// proportional per-part child spans when it closes.
    pub(crate) fn part_ops(&mut self, parts: &[(usize, u64)]) {
        if let Some(top) = self.open.last_mut() {
            top.parts
                .get_or_insert_with(Vec::new)
                .extend_from_slice(parts);
        }
    }

    pub(crate) fn close(&mut self, now: VirtualTime, wire: WireStats) {
        // lint: allow(E002) — Env::span pairs every close with an open
        let open = self.open.pop().expect("span close without open");
        let span = Span {
            rank: self.rank,
            phase: open.phase,
            scope: open.scope,
            label: open.label,
            start: open.start,
            end: now,
            ops: self.ops_total - open.ops0,
            wire: wire_delta(wire, open.wire0),
        };
        let parts = open.parts;
        if !span.is_empty() {
            if let Some(parts) = &parts {
                self.subdivide(&span, parts);
            }
            self.spans.push(span);
        }
    }

    /// Emit per-part children of `parent`, splitting its interval in part
    /// order proportionally to each part's op count. In virtual mode the
    /// parent's duration *is* the merged op total times `T_Operation`, so
    /// the split reproduces the sequential execution exactly.
    fn subdivide(&mut self, parent: &Span, parts: &[(usize, u64)]) {
        let total: u64 = parts.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return;
        }
        let dur = parent.duration().as_micros();
        let mut prefix = 0u64;
        for &(pid, n) in parts {
            if n == 0 {
                continue;
            }
            let t0 = parent.start + VirtualTime::from_micros(dur * prefix as f64 / total as f64);
            prefix += n;
            let t1 = parent.start + VirtualTime::from_micros(dur * prefix as f64 / total as f64);
            self.spans.push(Span {
                rank: self.rank,
                phase: parent.phase,
                scope: parent.scope,
                label: format!("part{pid}"),
                start: t0,
                end: t1,
                ops: n,
                wire: WireStats::default(),
            });
        }
    }

    /// Emit an instantaneous-interval span directly (wire traffic, waits,
    /// timeouts) without going through the open-span stack.
    pub(crate) fn emit(
        &mut self,
        phase: Phase,
        label: String,
        start: VirtualTime,
        end: VirtualTime,
        wire: WireStats,
    ) {
        let span = Span {
            rank: self.rank,
            phase,
            scope: self.scope,
            label,
            start,
            end,
            ops: 0,
            wire,
        };
        if !span.is_empty() {
            self.spans.push(span);
        }
    }

    pub(crate) fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Close out the run: fold run-level totals into the registry and
    /// produce the rank's trace.
    pub(crate) fn finish(mut self, ledger: &PhaseLedger) -> RankTrace {
        debug_assert!(self.open.is_empty(), "unclosed span at end of run");
        self.metrics.count("ops.total", self.ops_total);
        let w = ledger.wire();
        self.metrics.count("wire.messages", w.messages);
        self.metrics.count("wire.elements", w.elements);
        self.metrics.count("wire.bytes", w.bytes);
        let f = ledger.faults();
        for (name, v) in [
            ("faults.drops", f.drops),
            ("faults.corrupts", f.corrupts),
            ("faults.delays", f.delays),
            ("faults.retries", f.retries),
            ("faults.acks", f.acks),
            ("faults.nacks", f.nacks),
        ] {
            if v > 0 {
                self.metrics.count(name, v);
            }
        }
        self.metrics.count("spans.count", self.spans.len() as u64);
        RankTrace {
            rank: self.rank,
            spans: self.spans,
            metrics: self.metrics,
            ledger: ledger.clone(),
        }
    }
}

fn wire_delta(now: WireStats, then: WireStats) -> WireStats {
    WireStats {
        messages: now.messages - then.messages,
        elements: now.elements - then.elements,
        bytes: now.bytes - then.bytes,
    }
}

/// Format a microsecond reading with nanosecond resolution — fixed-width
/// decimal, so exports are byte-stable.
fn us(t: VirtualTime) -> String {
    format!("{:.3}", t.as_micros())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render rank traces as Chrome-trace ("Trace Event Format") JSON, loadable
/// in `chrome://tracing` and <https://ui.perfetto.dev>. One process, one
/// thread per rank, complete (`"ph":"X"`) events with microsecond
/// timestamps off the virtual clock. Byte-stable for a given run.
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for t in traces {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"rank {}\"}}}}",
            t.rank, t.rank
        );
        for s in &t.spans {
            let name = if s.label.is_empty() {
                s.phase.label().to_string()
            } else {
                format!("{} {}", s.phase.label(), s.label)
            };
            let cat = if s.scope.is_empty() { "run" } else { s.scope };
            let _ = write!(
                out,
                ",\n{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"ops\":{},\"msgs\":{},\"elems\":{},\"bytes\":{}}}}}",
                json_escape(&name),
                json_escape(cat),
                t.rank,
                us(s.start),
                us(s.duration()),
                s.ops,
                s.wire.messages,
                s.wire.elements,
                s.wire.bytes
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render rank traces as a flat metrics JSON document: per rank, the phase
/// totals off the ledger, the wire counters, and every registry counter
/// and histogram. Byte-stable for a given run.
pub fn metrics_json(traces: &[RankTrace]) -> String {
    let mut out = String::from("{\"ranks\":[\n");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "{{\"rank\":{},\"phases_us\":{{", t.rank);
        let mut first = true;
        for (p, v) in t.ledger.nonzero() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", p.label(), us(v));
        }
        out.push_str("},\"counters\":{");
        let mut first = true;
        for (k, v) in t.metrics.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in t.metrics.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{{",
                json_escape(k),
                h.count(),
                h.sum()
            );
            let mut bfirst = true;
            for (b, c) in h.buckets() {
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let _ = write!(out, "\"{}\":{}", Histogram::bucket_floor(b), c);
            }
            out.push_str("}}");
        }
        out.push_str("},\"spans\":");
        let _ = write!(out, "{}}}", t.spans.len());
    }
    out.push_str("\n]}\n");
    out
}

/// Render a per-rank phase waterfall on the **absolute** virtual-time axis
/// (unlike [`crate::timing::render_timeline`], which concatenates phase
/// totals): each rank's row places its spans where they actually happened,
/// keyed by [`Phase::timeline_char`], so cross-rank causality — who waited
/// for whom — is visible at a glance.
pub fn render_waterfall(traces: &[RankTrace], width: usize) -> String {
    let width = width.max(10);
    let makespan = traces
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.end))
        .fold(VirtualTime::ZERO, VirtualTime::max);
    let scale = if makespan.as_micros() > 0.0 {
        width as f64 / makespan.as_micros()
    } else {
        0.0
    };
    let mut out = String::new();
    for t in traces {
        let mut row = vec![' '; width];
        // Longest spans first, so nested/short spans overwrite their
        // parents and stay visible.
        let mut order: Vec<&Span> = t.spans.iter().collect();
        order.sort_by(|a, b| {
            b.duration()
                .as_micros()
                .partial_cmp(&a.duration().as_micros())
                // lint: allow(E002) — virtual micros are never NaN by construction
                .expect("durations are finite")
                .then(
                    a.start
                        .as_micros()
                        .partial_cmp(&b.start.as_micros())
                        // lint: allow(E002) — virtual micros are never NaN by construction
                        .expect("starts are finite"),
                )
        });
        for s in order {
            // lint: allow(W002) — non-negative micros scaled into 0..=width
            let lo = (s.start.as_micros() * scale).floor() as usize;
            // lint: allow(W002) — non-negative micros scaled into 0..=width
            let hi = ((s.end.as_micros() * scale).ceil() as usize).min(width);
            let ch = s.phase.timeline_char();
            for slot in row.iter_mut().take(hi).skip(lo) {
                *slot = ch;
            }
        }
        let bar: String = row.into_iter().collect();
        let end = t
            .spans
            .iter()
            .map(|s| s.end)
            .fold(VirtualTime::ZERO, VirtualTime::max);
        let _ = writeln!(out, "P{:<3}|{}| {}", t.rank, bar, end);
    }
    out
}

/// Render a phase × rank summary table: one row per phase that any rank
/// spent time in, one column per rank (time in ms), followed by per-rank
/// ops and wire bytes rows off the metrics registry.
pub fn render_phase_table(traces: &[RankTrace]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<10}", "phase");
    for t in traces {
        let _ = write!(out, "{:>12}", format!("P{}", t.rank));
    }
    out.push('\n');
    for p in Phase::ALL {
        if traces.iter().all(|t| t.ledger.get(p).as_micros() == 0.0) {
            continue;
        }
        let _ = write!(out, "{:<10}", p.label());
        for t in traces {
            let _ = write!(out, "{:>12}", t.ledger.get(p).to_string());
        }
        out.push('\n');
    }
    let _ = write!(out, "{:<10}", "ops");
    for t in traces {
        let _ = write!(out, "{:>12}", t.metrics.counter("ops.total"));
    }
    out.push('\n');
    let _ = write!(out, "{:<10}", "tx bytes");
    for t in traces {
        let _ = write!(out, "{:>12}", t.metrics.counter("wire.bytes"));
    }
    out.push('\n');
    let _ = write!(out, "{:<10}", "tx elems");
    for t in traces {
        let _ = write!(out, "{:>12}", t.metrics.counter("wire.elements"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: f64) -> VirtualTime {
        VirtualTime::from_micros(v)
    }

    fn span(rank: usize, phase: Phase, t0: f64, t1: f64) -> Span {
        Span {
            rank,
            phase,
            scope: "TEST",
            label: String::new(),
            start: vt(t0),
            end: vt(t1),
            ops: 3,
            wire: WireStats::default(),
        }
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1011);
        let buckets: Vec<(u32, u64)> = h.buckets().collect();
        // 0 → bucket 0; 1,1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10.
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 2), (3, 1), (10, 1)]);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(10), 512);
    }

    #[test]
    fn registry_counts_and_observes() {
        let mut m = MetricsRegistry::new();
        m.count("a", 2);
        m.count("a", 3);
        m.observe("h", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn tracer_measures_ops_and_wire_deltas() {
        let mut tr = Tracer::new(2);
        tr.set_scope("TEST");
        tr.open(Phase::Pack, String::new(), vt(0.0), WireStats::default());
        tr.note_ops(10);
        tr.close(
            vt(10.0),
            WireStats {
                messages: 1,
                elements: 4,
                bytes: 32,
            },
        );
        let trace = tr.finish(&PhaseLedger::new());
        assert_eq!(trace.spans.len(), 1);
        let s = &trace.spans[0];
        assert_eq!((s.rank, s.phase, s.ops), (2, Phase::Pack, 10));
        assert_eq!(s.wire.bytes, 32);
        assert_eq!(s.scope, "TEST");
        assert_eq!(trace.metrics.counter("ops.total"), 10);
    }

    #[test]
    fn empty_spans_are_dropped() {
        let mut tr = Tracer::new(0);
        tr.open(Phase::Recv, String::new(), vt(5.0), WireStats::default());
        tr.close(vt(5.0), WireStats::default());
        assert!(tr.finish(&PhaseLedger::new()).spans.is_empty());
    }

    #[test]
    fn part_ops_subdivide_proportionally_in_part_order() {
        let mut tr = Tracer::new(0);
        tr.open(Phase::Encode, String::new(), vt(0.0), WireStats::default());
        tr.part_ops(&[(0, 30), (1, 10), (2, 0), (3, 60)]);
        tr.note_ops(100);
        tr.close(vt(100.0), WireStats::default());
        let spans = tr.finish(&PhaseLedger::new()).spans;
        // Three non-zero children then the parent.
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].label, "part0");
        assert_eq!(
            (spans[0].start, spans[0].end, spans[0].ops),
            (vt(0.0), vt(30.0), 30)
        );
        assert_eq!((spans[1].start, spans[1].end), (vt(30.0), vt(40.0)));
        assert_eq!(spans[2].label, "part3");
        assert_eq!((spans[2].start, spans[2].end), (vt(40.0), vt(100.0)));
        assert_eq!(spans[3].label, "");
        assert_eq!(spans[3].ops, 100);
    }

    #[test]
    fn memory_sink_sorts_by_rank() {
        let sink = MemorySink::new();
        for rank in [2usize, 0, 1] {
            sink.record(Tracer::new(rank).finish(&PhaseLedger::new()));
        }
        let ranks: Vec<usize> = sink.take().iter().map(|t| t.rank).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
        assert!(sink.take().is_empty(), "take drains");
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.is_enabled());
        assert!(MemorySink::new().is_enabled());
    }

    fn sample_traces() -> Vec<RankTrace> {
        let mut l0 = PhaseLedger::new();
        l0.record(Phase::Pack, vt(8.0));
        l0.record(Phase::Send, vt(4.0));
        let mut m0 = MetricsRegistry::new();
        m0.count("ops.total", 8);
        m0.count("wire.bytes", 64);
        m0.count("wire.elements", 8);
        m0.observe("tx.elems", 8);
        let t0 = RankTrace {
            rank: 0,
            spans: vec![
                span(0, Phase::Pack, 0.0, 8.0),
                span(0, Phase::Send, 8.0, 12.0),
            ],
            metrics: m0,
            ledger: l0,
        };
        let mut l1 = PhaseLedger::new();
        l1.record(Phase::Wait, vt(12.0));
        let t1 = RankTrace {
            rank: 1,
            spans: vec![span(1, Phase::Wait, 0.0, 12.0)],
            metrics: MetricsRegistry::new(),
            ledger: l1,
        };
        vec![t0, t1]
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_stable() {
        let traces = sample_traces();
        let a = chrome_trace_json(&traces);
        let b = chrome_trace_json(&traces);
        assert_eq!(a, b, "export must be byte-stable");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(a.contains("\"name\":\"pack\""), "{a}");
        assert!(a.contains("\"ts\":0.000,\"dur\":8.000"), "{a}");
        assert!(a.contains("\"tid\":1"), "{a}");
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn metrics_json_lists_phases_counters_histograms() {
        let s = metrics_json(&sample_traces());
        assert!(s.contains("\"rank\":0"), "{s}");
        assert!(s.contains("\"pack\":8.000"), "{s}");
        assert!(s.contains("\"ops.total\":8"), "{s}");
        assert!(s.contains("\"tx.elems\""), "{s}");
        assert!(s.contains("\"buckets\":{\"8\":1}"), "{s}");
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn waterfall_places_spans_on_absolute_axis() {
        let s = render_waterfall(&sample_traces(), 24);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Rank 0: pack for 2/3 of the row then send; rank 1 waits the
        // whole makespan.
        assert!(lines[0].contains("kkkk"), "{s}");
        assert!(lines[0].contains("ss"), "{s}");
        // Count dots inside the bar only — the time suffix also has one.
        let bar = lines[1].split('|').nth(1).unwrap();
        assert_eq!(bar.matches('.').count(), 24, "{s}");
    }

    #[test]
    fn phase_table_has_rank_columns() {
        let s = render_phase_table(&sample_traces());
        let header = s.lines().next().unwrap();
        assert!(header.contains("P0") && header.contains("P1"), "{s}");
        assert!(s.contains("pack"), "{s}");
        assert!(s.contains("wait"), "{s}");
        assert!(!s.contains("decode"), "all-zero phases are omitted: {s}");
        assert!(s.lines().any(|l| l.starts_with("tx bytes")), "{s}");
    }
}
