//! Per-phase timing ledgers.
//!
//! The paper reports two aggregate costs per scheme: `T_Distribution`
//! (packing + send/receive + unpacking) and `T_Compression` (compression,
//! or encoding + decoding for the ED scheme). To let the scheme drivers
//! reconstruct those aggregates — and to expose finer structure for the
//! ablation benches — every charge on a simulated processor is attributed
//! to a [`Phase`], accumulated in a [`PhaseLedger`].

use crate::time::VirtualTime;
use std::fmt;
use std::ops::{Add, AddAssign};

/// The phases a distribution scheme's work is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Computing the partition bounds (not counted by the paper, §4).
    Partition,
    /// Building CRS/CCS arrays from a dense array (SFC at receivers, CFS at
    /// the source).
    Compress,
    /// Building the ED special buffer at the source.
    Encode,
    /// Packing compressed arrays / dense elements into a send buffer.
    Pack,
    /// Sending: `T_Startup + elems × T_Data` per message, charged at the
    /// sender (the paper counts send/receive once, on the wire).
    Send,
    /// Receive-side bookkeeping other than blocking (normally ~0).
    Recv,
    /// Unpacking a received buffer into `RO`/`CO`/`VL` (CFS) or a dense
    /// local array (SFC), including index conversion.
    Unpack,
    /// Decoding the ED special buffer into `RO`/`CO`/`VL`.
    Decode,
    /// Idle time spent blocked in `recv` waiting for a message that has not
    /// arrived yet (virtual mode: clock synchronisation jumps).
    Wait,
    /// Post-distribution computation (SpMV etc. from `sparsedist-ops`).
    Compute,
    /// Reliable-delivery recovery: ARQ timeouts (with exponential backoff)
    /// and the wire cost of retransmitted frames under fault injection.
    Retry,
    /// Anything else.
    Other,
}

impl Phase {
    /// All phases, in ledger order.
    pub const ALL: [Phase; 12] = [
        Phase::Partition,
        Phase::Compress,
        Phase::Encode,
        Phase::Pack,
        Phase::Send,
        Phase::Recv,
        Phase::Unpack,
        Phase::Decode,
        Phase::Wait,
        Phase::Compute,
        Phase::Retry,
        Phase::Other,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Partition => 0,
            Phase::Compress => 1,
            Phase::Encode => 2,
            Phase::Pack => 3,
            Phase::Send => 4,
            Phase::Recv => 5,
            Phase::Unpack => 6,
            Phase::Decode => 7,
            Phase::Wait => 8,
            Phase::Compute => 9,
            Phase::Retry => 10,
            Phase::Other => 11,
        }
    }

    /// Short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Partition => "partition",
            Phase::Compress => "compress",
            Phase::Encode => "encode",
            Phase::Pack => "pack",
            Phase::Send => "send",
            Phase::Recv => "recv",
            Phase::Unpack => "unpack",
            Phase::Decode => "decode",
            Phase::Wait => "wait",
            Phase::Compute => "compute",
            Phase::Retry => "retry",
            Phase::Other => "other",
        }
    }

    /// One-character key for timeline bars, distinct for every phase:
    /// mostly the label's first letter, with `wait` as `.`, `retry` as `!`,
    /// and hand-picked letters where first letters collide (pack vs
    /// partition, compute vs compress).
    pub fn timeline_char(self) -> char {
        match self {
            Phase::Partition => 'p',
            Phase::Compress => 'c',
            Phase::Encode => 'e',
            Phase::Pack => 'k',
            Phase::Send => 's',
            Phase::Recv => 'r',
            Phase::Unpack => 'u',
            Phase::Decode => 'd',
            Phase::Wait => '.',
            Phase::Compute => 'x',
            Phase::Retry => '!',
            Phase::Other => 'o',
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters of injected faults and recovery actions on one simulated
/// processor. Deterministic for a given [`crate::fault::FaultPlan`]: drops,
/// corruptions and delays are counted where the frame is *processed* (the
/// receiver), retries and exhausted sends where recovery runs (the sender),
/// acks/nacks where they are emitted (the receiver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames lost on the wire (receiver side).
    pub drops: u64,
    /// Frames rejected by the CRC32 check (receiver side).
    pub corrupts: u64,
    /// Frames delivered late (receiver side).
    pub delays: u64,
    /// Frames retransmitted after a timeout (sender side).
    pub retries: u64,
    /// Ack control frames emitted (receiver side).
    pub acks: u64,
    /// Nack control frames emitted (receiver side).
    pub nacks: u64,
}

impl FaultStats {
    /// True when no fault was seen and no recovery ran.
    pub fn is_quiet(&self) -> bool {
        self.drops == 0 && self.corrupts == 0 && self.delays == 0 && self.retries == 0
    }
}

impl AddAssign for FaultStats {
    fn add_assign(&mut self, rhs: FaultStats) {
        self.drops += rhs.drops;
        self.corrupts += rhs.corrupts;
        self.delays += rhs.delays;
        self.retries += rhs.retries;
        self.acks += rhs.acks;
        self.nacks += rhs.nacks;
    }
}

/// Bytes-on-the-wire counters for one simulated processor.
///
/// The paper's cost model charges `T_Data` per *logical element*, which is
/// what the virtual clock books — but with the compact v2 wire format a
/// logical element no longer costs a fixed 8 bytes, so the engine also
/// counts every **physical transmission** here: one record per data frame
/// leaving this rank (retransmissions included), with its logical element
/// count and its actual encoded byte size. Comparing `elements * 8` with
/// `bytes` is exactly the v1-vs-v2 wire saving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames transmitted from this rank (retransmissions included).
    pub messages: u64,
    /// Logical elements across those frames (what `T_Data` was charged on).
    pub elements: u64,
    /// Encoded payload bytes across those frames.
    pub bytes: u64,
}

impl WireStats {
    /// True when nothing has been transmitted.
    pub fn is_zero(&self) -> bool {
        self.messages == 0 && self.elements == 0 && self.bytes == 0
    }

    /// Mean encoded bytes per logical element (8.0 for the v1 layout;
    /// `None` when no elements have been sent).
    pub fn bytes_per_element(&self) -> Option<f64> {
        (self.elements > 0).then(|| self.bytes as f64 / self.elements as f64)
    }
}

impl AddAssign for WireStats {
    fn add_assign(&mut self, rhs: WireStats) {
        self.messages += rhs.messages;
        self.elements += rhs.elements;
        self.bytes += rhs.bytes;
    }
}

/// Time accumulated per [`Phase`] on one simulated processor, plus the
/// fault/recovery counters of the reliable-delivery layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseLedger {
    spans: [VirtualTime; 12],
    faults: FaultStats,
    wire: WireStats,
}

impl PhaseLedger {
    /// An all-zero ledger.
    pub fn new() -> Self {
        PhaseLedger::default()
    }

    /// Add `span` to `phase`.
    pub fn record(&mut self, phase: Phase, span: VirtualTime) {
        self.spans[phase.index()] += span;
    }

    /// Total accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> VirtualTime {
        self.spans[phase.index()]
    }

    /// Sum over an arbitrary set of phases.
    pub fn sum(&self, phases: &[Phase]) -> VirtualTime {
        phases.iter().map(|&p| self.get(p)).sum()
    }

    /// Sum over every phase except `Wait` (which is idle, not work).
    pub fn busy_total(&self) -> VirtualTime {
        Phase::ALL
            .iter()
            .filter(|&&p| p != Phase::Wait)
            .map(|&p| self.get(p))
            .sum()
    }

    /// Iterate `(phase, span)` pairs with non-zero spans.
    pub fn nonzero(&self) -> impl Iterator<Item = (Phase, VirtualTime)> + '_ {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.get(p)))
            .filter(|(_, t)| t.as_micros() > 0.0)
    }

    /// The fault/recovery counters.
    pub fn faults(&self) -> FaultStats {
        self.faults
    }

    /// Mutable access for the engine's fault bookkeeping.
    pub fn faults_mut(&mut self) -> &mut FaultStats {
        &mut self.faults
    }

    /// The bytes-on-wire counters.
    pub fn wire(&self) -> WireStats {
        self.wire
    }

    /// Mutable access for the engine's wire bookkeeping.
    pub fn wire_mut(&mut self) -> &mut WireStats {
        &mut self.wire
    }
}

impl Add for PhaseLedger {
    type Output = PhaseLedger;
    fn add(mut self, rhs: PhaseLedger) -> PhaseLedger {
        self += rhs;
        self
    }
}

impl AddAssign for PhaseLedger {
    fn add_assign(&mut self, rhs: PhaseLedger) {
        for i in 0..self.spans.len() {
            self.spans[i] += rhs.spans[i];
        }
        self.faults += rhs.faults;
        self.wire += rhs.wire;
    }
}

impl fmt::Display for PhaseLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (p, t) in self.nonzero() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", p.label(), t)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Render a fleet of per-rank ledgers as a proportional text timeline —
/// one bar per rank, one letter per phase, scaled so the busiest rank
/// spans `width` characters. Phases are keyed by [`Phase::timeline_char`],
/// mostly the first letter of
/// their label (send = `s`, compress = `c`, …; `wait` renders as `.`).
///
/// ```text
/// P0 |cccccccccccppppssss      | 12.402ms
/// P1 |....uu                   |  3.101ms
/// ```
pub fn render_timeline(ledgers: &[PhaseLedger], width: usize) -> String {
    let width = width.max(10);
    let max_total = ledgers
        .iter()
        .map(|l| l.busy_total() + l.get(Phase::Wait))
        .fold(VirtualTime::ZERO, VirtualTime::max);
    let scale = if max_total.as_micros() > 0.0 {
        width as f64 / max_total.as_micros()
    } else {
        0.0
    };
    // Pad the tx= column to the widest byte/element counts in the fleet,
    // so rows stay aligned even when one rank shipped gigabytes and the
    // rest sent a handful of elements.
    let bytes_w = ledgers
        .iter()
        .map(|l| l.wire().bytes.to_string().len())
        .max()
        .unwrap_or(1);
    let elems_w = ledgers
        .iter()
        .map(|l| l.wire().elements.to_string().len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for (rank, l) in ledgers.iter().enumerate() {
        let mut bar = String::new();
        for p in Phase::ALL {
            let span = l.get(p).as_micros();
            // lint: allow(W002) — scale maps the longest ledger to width; small, non-negative
            let chars = (span * scale).round() as usize;
            let ch = p.timeline_char();
            for _ in 0..chars {
                bar.push(ch);
            }
        }
        bar.truncate(width);
        let total = l.busy_total() + l.get(Phase::Wait);
        let wire = l.wire();
        if wire.is_zero() {
            out.push_str(&format!("P{rank:<3}|{bar:<width$}| {total}\n"));
        } else {
            out.push_str(&format!(
                "P{rank:<3}|{bar:<width$}| {total} tx={:>bytes_w$}B/{:>elems_w$}el\n",
                wire.bytes, wire.elements
            ));
        }
    }
    out
}

/// Render the fault/recovery section of a fleet of per-rank ledgers: one
/// line per rank that saw faults or ran recovery, plus a totals line.
/// Returns an empty string when every ledger is quiet (no faults, no
/// retries) — callers can append the result unconditionally.
pub fn render_fault_summary(ledgers: &[PhaseLedger]) -> String {
    let mut total = FaultStats::default();
    let mut total_retry_time = VirtualTime::ZERO;
    let mut out = String::new();
    for (rank, l) in ledgers.iter().enumerate() {
        let f = l.faults();
        total += f;
        total_retry_time += l.get(Phase::Retry);
        if f.is_quiet() {
            continue;
        }
        out.push_str(&format!(
            "P{rank:<3} drops={} corrupt={} delayed={} retries={} ack/nack={}/{} retry_time={}\n",
            f.drops,
            f.corrupts,
            f.delays,
            f.retries,
            f.acks,
            f.nacks,
            l.get(Phase::Retry),
        ));
    }
    if total.is_quiet() {
        return String::new();
    }
    out.push_str(&format!(
        "faults: {} dropped, {} corrupted, {} delayed; {} retransmissions costing {}\n",
        total.drops, total.corrupts, total.delays, total.retries, total_retry_time,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> VirtualTime {
        VirtualTime::from_micros(v)
    }

    #[test]
    fn add_and_get() {
        let mut l = PhaseLedger::new();
        l.record(Phase::Pack, us(3.0));
        l.record(Phase::Pack, us(2.0));
        l.record(Phase::Send, us(10.0));
        assert_eq!(l.get(Phase::Pack).as_micros(), 5.0);
        assert_eq!(l.get(Phase::Send).as_micros(), 10.0);
        assert_eq!(l.get(Phase::Unpack).as_micros(), 0.0);
    }

    #[test]
    fn sum_selected_phases() {
        let mut l = PhaseLedger::new();
        l.record(Phase::Pack, us(1.0));
        l.record(Phase::Send, us(2.0));
        l.record(Phase::Unpack, us(4.0));
        l.record(Phase::Compress, us(8.0));
        let dist = l.sum(&[Phase::Pack, Phase::Send, Phase::Unpack]);
        assert_eq!(dist.as_micros(), 7.0);
    }

    #[test]
    fn busy_total_excludes_wait() {
        let mut l = PhaseLedger::new();
        l.record(Phase::Compress, us(5.0));
        l.record(Phase::Wait, us(100.0));
        assert_eq!(l.busy_total().as_micros(), 5.0);
    }

    #[test]
    fn ledger_addition_merges() {
        let mut a = PhaseLedger::new();
        a.record(Phase::Encode, us(1.0));
        let mut b = PhaseLedger::new();
        b.record(Phase::Encode, us(2.0));
        b.record(Phase::Decode, us(3.0));
        let c = a + b;
        assert_eq!(c.get(Phase::Encode).as_micros(), 3.0);
        assert_eq!(c.get(Phase::Decode).as_micros(), 3.0);
    }

    #[test]
    fn all_contains_each_phase_once() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL order must match index order");
        }
    }

    #[test]
    fn timeline_chars_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in Phase::ALL {
            assert!(seen.insert(p.timeline_char()), "duplicate key for {p}");
        }
        assert_eq!(Phase::Retry.timeline_char(), '!');
        assert_eq!(Phase::Wait.timeline_char(), '.');
    }

    #[test]
    fn fault_stats_merge_with_ledgers() {
        let mut a = PhaseLedger::new();
        a.faults_mut().drops = 2;
        a.faults_mut().retries = 3;
        let mut b = PhaseLedger::new();
        b.faults_mut().drops = 1;
        b.faults_mut().acks = 5;
        let c = a + b;
        assert_eq!(c.faults().drops, 3);
        assert_eq!(c.faults().retries, 3);
        assert_eq!(c.faults().acks, 5);
        assert!(!c.faults().is_quiet());
        assert!(PhaseLedger::new().faults().is_quiet());
    }

    #[test]
    fn fault_summary_lists_only_noisy_ranks() {
        let quiet = PhaseLedger::new();
        let mut noisy = PhaseLedger::new();
        noisy.faults_mut().drops = 4;
        noisy.faults_mut().retries = 4;
        noisy.record(Phase::Retry, us(1500.0));
        let s = render_fault_summary(&[quiet.clone(), noisy]);
        assert!(s.contains("P1"), "{s}");
        assert!(!s.contains("P0"), "{s}");
        assert!(s.contains("4 retransmissions"), "{s}");
        assert_eq!(render_fault_summary(&vec![quiet; 3]), "");
    }

    #[test]
    fn timeline_scales_to_busiest_rank() {
        let mut a = PhaseLedger::new();
        a.record(Phase::Compress, us(100.0));
        let mut b = PhaseLedger::new();
        b.record(Phase::Wait, us(25.0));
        b.record(Phase::Unpack, us(25.0));
        let s = render_timeline(&[a, b], 40);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        let bar = |line: &str| -> String {
            line.split('|')
                .nth(1)
                .expect("bar between pipes")
                .to_string()
        };
        // Rank 0 fills the width with 'c'; rank 1 is half as long,
        // half 'u' and half wait-dots.
        assert_eq!(bar(lines[0]).matches('c').count(), 40, "{s}");
        assert_eq!(bar(lines[1]).matches('.').count(), 10, "{s}");
        assert_eq!(bar(lines[1]).matches('u').count(), 10, "{s}");
    }

    #[test]
    fn wire_stats_merge_and_derive() {
        let mut a = PhaseLedger::new();
        *a.wire_mut() += WireStats {
            messages: 2,
            elements: 10,
            bytes: 80,
        };
        let mut b = PhaseLedger::new();
        *b.wire_mut() += WireStats {
            messages: 1,
            elements: 6,
            bytes: 20,
        };
        let c = a + b;
        assert_eq!(
            c.wire(),
            WireStats {
                messages: 3,
                elements: 16,
                bytes: 100
            }
        );
        assert_eq!(c.wire().bytes_per_element(), Some(6.25));
        assert!(PhaseLedger::new().wire().is_zero());
        assert_eq!(WireStats::default().bytes_per_element(), None);
    }

    #[test]
    fn timeline_appends_wire_column_after_the_bars() {
        let mut l = PhaseLedger::new();
        l.record(Phase::Send, us(10.0));
        *l.wire_mut() += WireStats {
            messages: 1,
            elements: 5,
            bytes: 17,
        };
        let s = render_timeline(&[l], 20);
        let line = s.lines().next().unwrap();
        // The bar stays between the pipes; the wire column rides after.
        assert_eq!(line.split('|').count(), 3, "{s}");
        assert!(line.ends_with("tx=17B/5el"), "{s}");
    }

    #[test]
    fn timeline_wire_columns_align_across_disparate_ranks() {
        // One rank shipped >1 GiB, the other a few bytes: the tx= column
        // must pad to the widest counts so the rows line up.
        let mut big = PhaseLedger::new();
        big.record(Phase::Send, us(10.0));
        *big.wire_mut() += WireStats {
            messages: 1,
            elements: 200_000_000,
            bytes: 1_600_000_000,
        };
        let mut small = PhaseLedger::new();
        small.record(Phase::Send, us(1.0));
        *small.wire_mut() += WireStats {
            messages: 1,
            elements: 5,
            bytes: 17,
        };
        let s = render_timeline(&[big, small], 20);
        let lines: Vec<&str> = s.lines().collect();
        let tx_at = |l: &str| l.find("tx=").expect("wire column present");
        assert_eq!(tx_at(lines[0]), tx_at(lines[1]), "{s}");
        assert_eq!(lines[0].len(), lines[1].len(), "{s}");
        assert!(lines[0].ends_with("tx=1600000000B/200000000el"), "{s}");
        assert!(lines[1].ends_with("tx=        17B/        5el"), "{s}");
    }

    #[test]
    fn timeline_of_empty_ledgers_is_blank_bars() {
        let s = render_timeline(&[PhaseLedger::new(), PhaseLedger::new()], 20);
        assert_eq!(s.lines().count(), 2);
        assert!(!s.contains('c'));
    }

    #[test]
    fn display_lists_nonzero_only() {
        let mut l = PhaseLedger::new();
        l.record(Phase::Send, us(1500.0));
        let s = l.to_string();
        assert!(s.contains("send=1.500ms"), "{s}");
        assert!(!s.contains("pack"));
        assert_eq!(PhaseLedger::new().to_string(), "(empty)");
    }
}
