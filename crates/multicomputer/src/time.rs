//! Virtual time: the unit in which the α-β cost model is charged.
//!
//! All model parameters and ledgers are expressed in **microseconds** held
//! in an `f64`. A newtype keeps the unit from being confused with element
//! counts or byte counts, and centralises the (few) arithmetic operations
//! virtual clocks need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) on a simulated clock, in microseconds.
///
/// `VirtualTime` is totally ordered (NaN never arises: all charges are
/// finite and non-negative, which [`VirtualTime::from_micros`] enforces).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The zero of every virtual clock.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Construct from a microsecond count.
    ///
    /// # Panics
    /// Panics if `micros` is negative or not finite; virtual time only ever
    /// moves forward.
    pub fn from_micros(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "virtual time must be finite and non-negative, got {micros}"
        );
        VirtualTime(micros)
    }

    /// The span as a raw microsecond count.
    pub fn as_micros(self) -> f64 {
        self.0
    }

    /// The span in milliseconds (the unit the paper's tables use).
    pub fn as_millis(self) -> f64 {
        self.0 / 1_000.0
    }

    /// The later of two instants (used when a receive synchronises a local
    /// clock with a message's arrival time).
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two instants (used when clipping a span to a
    /// window).
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Saturating difference: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: VirtualTime) -> VirtualTime {
        VirtualTime((self.0 - other.0).max(0.0))
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        iter.fold(VirtualTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(VirtualTime::default(), VirtualTime::ZERO);
    }

    #[test]
    fn add_and_sub() {
        let a = VirtualTime::from_micros(5.0);
        let b = VirtualTime::from_micros(3.0);
        assert_eq!((a + b).as_micros(), 8.0);
        assert_eq!((a - b).as_micros(), 2.0);
        // Subtraction saturates: time spans cannot be negative.
        assert_eq!((b - a).as_micros(), 0.0);
    }

    #[test]
    fn max_picks_later() {
        let a = VirtualTime::from_micros(5.0);
        let b = VirtualTime::from_micros(9.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn millis_conversion() {
        assert_eq!(VirtualTime::from_micros(1500.0).as_millis(), 1.5);
    }

    #[test]
    fn sum_of_spans() {
        let total: VirtualTime = (1..=4).map(|i| VirtualTime::from_micros(i as f64)).sum();
        assert_eq!(total.as_micros(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = VirtualTime::from_micros(-1.0);
    }

    #[test]
    fn display_in_millis() {
        assert_eq!(VirtualTime::from_micros(1234.5).to_string(), "1.234ms");
    }
}
