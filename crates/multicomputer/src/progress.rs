//! Deterministic progress model for nonblocking sends.
//!
//! [`Env::isend`](crate::engine::Env::isend) needs an answer to "when does
//! an in-flight transmission actually occupy the wire?" that does not
//! depend on host scheduling. The model here is a single NIC per rank that
//! serialises that rank's outgoing transmissions:
//!
//! * a transmission posted at local time `t` with wire cost `c` **starts**
//!   at `max(t, nic_free)` — the NIC finishes whatever it was already
//!   pushing out first — and **arrives** at `start + c`;
//! * posting is free for the CPU: the local clock does not advance, so the
//!   rank can keep encoding the next part while the NIC drains;
//! * [`Env::wait_all`](crate::engine::Env::wait_all) joins the CPU with the
//!   NIC: the local clock jumps to `nic_free` (if it is ahead) and the jump
//!   is booked into the caller's current phase.
//!
//! # ARQ on the NIC
//!
//! Under a fault plan the NIC also owns the retransmit schedule: a doomed
//! attempt's wire time, the ARQ timeout that follows it
//! ([`NicProgress::timeout_gap`]), and every retransmission's wire time are
//! *labelled* spans on the NIC timeline (`NicSpan::retry`), while
//! first-attempt wire time stays unlabelled. At `wait_all` the engine asks
//! [`NicProgress::retry_within`] how much of the clock jump was recovery
//! work and books that slice to `Phase::Retry`, attributing the rest to the
//! caller's current phase — so retransmissions hidden behind compute cost
//! nothing, exactly like hidden first attempts.
//!
//! Everything is pure arithmetic on [`VirtualTime`] — no channels, no host
//! clocks, and no ledger access (the engine does all phase booking) — so
//! nonblocking runs stay bit-deterministic exactly like blocking ones.

use crate::time::VirtualTime;

/// The transmission window the NIC assigned to one posted send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxWindow {
    /// When the NIC begins pushing the frame onto the wire.
    pub start: VirtualTime,
    /// When the frame fully arrives at the receiver (start + wire cost).
    pub arrival: VirtualTime,
}

/// One labelled span of NIC activity since the last drain.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NicSpan {
    start: VirtualTime,
    end: VirtualTime,
    /// True for ARQ recovery time: retransmission wire occupancy and
    /// timeout gaps. False for first-attempt wire time.
    retry: bool,
}

/// Per-rank NIC state: when the (single) outgoing link is free again, plus
/// the labelled activity timeline accumulated since the last drain.
#[derive(Debug, Clone, Default)]
pub struct NicProgress {
    free_at: VirtualTime,
    in_flight: usize,
    spans: Vec<NicSpan>,
}

impl NicProgress {
    /// A NIC that has never transmitted: free immediately.
    pub fn new() -> Self {
        NicProgress::default()
    }

    /// Schedule one first-attempt transmission of wire cost `cost` posted
    /// at local time `now`. Returns its window and marks the NIC busy until
    /// the arrival.
    pub fn begin_tx(&mut self, now: VirtualTime, cost: VirtualTime) -> TxWindow {
        self.begin_tx_labeled(now, cost, false)
    }

    /// Schedule one retransmission: identical to [`NicProgress::begin_tx`]
    /// but the wire occupancy is labelled as ARQ recovery time, so
    /// [`NicProgress::retry_within`] will report it.
    pub fn begin_retry_tx(&mut self, now: VirtualTime, cost: VirtualTime) -> TxWindow {
        self.begin_tx_labeled(now, cost, true)
    }

    fn begin_tx_labeled(&mut self, now: VirtualTime, cost: VirtualTime, retry: bool) -> TxWindow {
        let start = now.max(self.free_at);
        let arrival = start + cost;
        self.free_at = arrival;
        self.in_flight += 1;
        self.spans.push(NicSpan {
            start,
            end: arrival,
            retry,
        });
        TxWindow { start, arrival }
    }

    /// Occupy the NIC's ARQ engine for `span` starting at the current
    /// `free_at` — the timeout between a doomed attempt and its
    /// retransmission. Subsequent transmissions queue behind the gap, and
    /// the gap counts as recovery time for [`NicProgress::retry_within`].
    pub fn timeout_gap(&mut self, span: VirtualTime) {
        let start = self.free_at;
        self.free_at = start + span;
        self.spans.push(NicSpan {
            start,
            end: self.free_at,
            retry: true,
        });
    }

    /// When the NIC next becomes idle (equals the last scheduled arrival).
    pub fn free_at(&self) -> VirtualTime {
        self.free_at
    }

    /// Transmissions posted since the last [`NicProgress::drain`].
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total ARQ recovery time (retransmission wire occupancy plus timeout
    /// gaps) falling inside the window `[lo, hi]` of the current timeline.
    pub fn retry_within(&self, lo: VirtualTime, hi: VirtualTime) -> VirtualTime {
        let mut total = VirtualTime::ZERO;
        for s in &self.spans {
            if !s.retry {
                continue;
            }
            let a = s.start.max(lo);
            let b = s.end.min(hi);
            total += b.saturating_sub(a);
        }
        total
    }

    /// Complete every posted transmission: returns the time the caller's
    /// clock must reach (the NIC-idle instant), resets the in-flight count
    /// and clears the labelled timeline. The NIC stays "warm" — a later
    /// `begin_tx` before `free_at` still queues behind the drained traffic,
    /// which is physically right: draining is the CPU catching up, not the
    /// wire resetting.
    pub fn drain(&mut self) -> VirtualTime {
        self.in_flight = 0;
        self.spans.clear();
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> VirtualTime {
        VirtualTime::from_micros(v)
    }

    #[test]
    fn serialises_back_to_back_posts() {
        let mut nic = NicProgress::new();
        // Two sends posted at the same instant share the link.
        let a = nic.begin_tx(us(10.0), us(5.0));
        let b = nic.begin_tx(us(10.0), us(3.0));
        assert_eq!(
            a,
            TxWindow {
                start: us(10.0),
                arrival: us(15.0)
            }
        );
        assert_eq!(
            b,
            TxWindow {
                start: us(15.0),
                arrival: us(18.0)
            }
        );
        assert_eq!(nic.free_at(), us(18.0));
        assert_eq!(nic.in_flight(), 2);
    }

    #[test]
    fn idle_gap_starts_at_post_time() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(2.0));
        // Posted long after the NIC went idle: starts immediately.
        let w = nic.begin_tx(us(100.0), us(1.0));
        assert_eq!(
            w,
            TxWindow {
                start: us(100.0),
                arrival: us(101.0)
            }
        );
    }

    #[test]
    fn drain_reports_idle_instant_and_clears_count() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(4.0));
        nic.begin_tx(us(1.0), us(4.0));
        assert_eq!(nic.drain(), us(8.0));
        assert_eq!(nic.in_flight(), 0);
        // The wire history survives the drain: a post "in the past"
        // still queues behind the already-transmitted frames.
        let w = nic.begin_tx(us(5.0), us(1.0));
        assert_eq!(w.start, us(8.0));
    }

    #[test]
    fn arq_schedule_labels_retry_time() {
        let mut nic = NicProgress::new();
        // Attempt 0 (doomed): wire [0, 16]; timeout [16, 26]; retransmit
        // [26, 42] — exactly the blocking ARQ timeline for a 16 µs frame
        // with a 10 µs first timeout.
        nic.begin_tx(us(0.0), us(16.0));
        nic.timeout_gap(us(10.0));
        nic.begin_retry_tx(us(0.0), us(16.0));
        assert_eq!(nic.free_at(), us(42.0));
        // The whole window: 26 µs of recovery, 16 µs of first-attempt wire.
        assert_eq!(nic.retry_within(us(0.0), us(42.0)), us(26.0));
        // A clipped window only counts the overlapping recovery slices.
        assert_eq!(nic.retry_within(us(20.0), us(30.0)), us(10.0));
        // Everything before the timeout is first-attempt time.
        assert_eq!(nic.retry_within(us(0.0), us(16.0)), us(0.0));
    }

    #[test]
    fn drain_clears_the_labelled_timeline() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(4.0));
        nic.timeout_gap(us(6.0));
        nic.begin_retry_tx(us(0.0), us(4.0));
        assert_eq!(nic.retry_within(us(0.0), us(14.0)), us(10.0));
        nic.drain();
        assert_eq!(nic.retry_within(us(0.0), us(100.0)), us(0.0));
    }

    #[test]
    fn timeout_gap_queues_subsequent_traffic() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(5.0));
        nic.timeout_gap(us(20.0));
        // Posted "now" but the ARQ engine holds the link until 25.
        let w = nic.begin_tx(us(1.0), us(5.0));
        assert_eq!(w.start, us(25.0));
        assert_eq!(w.arrival, us(30.0));
    }
}
