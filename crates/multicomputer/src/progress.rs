//! Deterministic progress model for nonblocking sends.
//!
//! [`Env::isend`](crate::engine::Env::isend) needs an answer to "when does
//! an in-flight transmission actually occupy the wire?" that does not
//! depend on host scheduling. The model here is a single NIC per rank that
//! serialises that rank's outgoing transmissions:
//!
//! * a transmission posted at local time `t` with wire cost `c` **starts**
//!   at `max(t, nic_free)` — the NIC finishes whatever it was already
//!   pushing out first — and **arrives** at `start + c`;
//! * posting is free for the CPU: the local clock does not advance, so the
//!   rank can keep encoding the next part while the NIC drains;
//! * [`Env::wait_all`](crate::engine::Env::wait_all) joins the CPU with the
//!   NIC: the local clock jumps to `nic_free` (if it is ahead) and the jump
//!   is booked into the caller's current phase.
//!
//! Everything is pure arithmetic on [`VirtualTime`] — no channels, no host
//! clocks — so nonblocking runs stay bit-deterministic exactly like
//! blocking ones.

use crate::time::VirtualTime;

/// The transmission window the NIC assigned to one posted send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxWindow {
    /// When the NIC begins pushing the frame onto the wire.
    pub start: VirtualTime,
    /// When the frame fully arrives at the receiver (start + wire cost).
    pub arrival: VirtualTime,
}

/// Per-rank NIC state: when the (single) outgoing link is free again.
#[derive(Debug, Clone, Default)]
pub struct NicProgress {
    free_at: VirtualTime,
    in_flight: usize,
}

impl NicProgress {
    /// A NIC that has never transmitted: free immediately.
    pub fn new() -> Self {
        NicProgress::default()
    }

    /// Schedule one transmission of wire cost `cost` posted at local time
    /// `now`. Returns its window and marks the NIC busy until the arrival.
    pub fn begin_tx(&mut self, now: VirtualTime, cost: VirtualTime) -> TxWindow {
        let start = now.max(self.free_at);
        let arrival = start + cost;
        self.free_at = arrival;
        self.in_flight += 1;
        TxWindow { start, arrival }
    }

    /// When the NIC next becomes idle (equals the last scheduled arrival).
    pub fn free_at(&self) -> VirtualTime {
        self.free_at
    }

    /// Transmissions posted since the last [`NicProgress::drain`].
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Complete every posted transmission: returns the time the caller's
    /// clock must reach (the NIC-idle instant) and resets the in-flight
    /// count. The NIC stays "warm" — a later `begin_tx` before `free_at`
    /// still queues behind the drained traffic, which is physically right:
    /// draining is the CPU catching up, not the wire resetting.
    pub fn drain(&mut self) -> VirtualTime {
        self.in_flight = 0;
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> VirtualTime {
        VirtualTime::from_micros(v)
    }

    #[test]
    fn serialises_back_to_back_posts() {
        let mut nic = NicProgress::new();
        // Two sends posted at the same instant share the link.
        let a = nic.begin_tx(us(10.0), us(5.0));
        let b = nic.begin_tx(us(10.0), us(3.0));
        assert_eq!(
            a,
            TxWindow {
                start: us(10.0),
                arrival: us(15.0)
            }
        );
        assert_eq!(
            b,
            TxWindow {
                start: us(15.0),
                arrival: us(18.0)
            }
        );
        assert_eq!(nic.free_at(), us(18.0));
        assert_eq!(nic.in_flight(), 2);
    }

    #[test]
    fn idle_gap_starts_at_post_time() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(2.0));
        // Posted long after the NIC went idle: starts immediately.
        let w = nic.begin_tx(us(100.0), us(1.0));
        assert_eq!(
            w,
            TxWindow {
                start: us(100.0),
                arrival: us(101.0)
            }
        );
    }

    #[test]
    fn drain_reports_idle_instant_and_clears_count() {
        let mut nic = NicProgress::new();
        nic.begin_tx(us(0.0), us(4.0));
        nic.begin_tx(us(1.0), us(4.0));
        assert_eq!(nic.drain(), us(8.0));
        assert_eq!(nic.in_flight(), 0);
        // The wire history survives the drain: a post "in the past"
        // still queues behind the already-transmitted frames.
        let w = nic.begin_tx(us(5.0), us(1.0));
        assert_eq!(w.start, us(8.0));
    }
}
