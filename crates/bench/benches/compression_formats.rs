//! Ablation: local compression format shootout (the paper's future-work
//! direction (1): "other … data compression methods").
//!
//! The schemes put CRS/CCS on the wire; a receiving processor may then
//! re-compress into DIA, JDS or BSR for its computation. This bench prints
//! each format's storage footprint on a banded vs a scattered workload
//! (structure sensitivity) and Criterion-measures build and SpMV cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::workload;
use sparsedist_core::compress::{Bsr, Crs, Dia, Jds};
use sparsedist_core::dense::Dense2D;
use sparsedist_core::opcount::OpCounter;
use sparsedist_gen::patterns::banded;
use sparsedist_ops::spmv::crs_spmv;
use std::hint::black_box;
use std::time::Duration;

fn footprint_report(name: &str, a: &Dense2D) {
    let crs = Crs::from_dense(a, &mut OpCounter::new());
    let dia = Dia::from_dense(a, &mut OpCounter::new());
    let jds = Jds::from_dense(a, &mut OpCounter::new());
    let bsr =
        Bsr::from_dense(a, 4, 4, &mut OpCounter::new()).expect("4x4 tiles divide the workload");
    eprintln!(
        "{name:<12} nnz={:<8} crs={:<8} dia={:<8} jds={:<8} bsr4x4={:<8} (stored elements)",
        a.nnz(),
        crs.nnz() * 2 + crs.ro().len(),
        dia.stored_elements(),
        jds.nnz() * 2,
        bsr.stored_elements(),
    );
}

fn bench_formats(c: &mut Criterion) {
    let n = 400;
    let scattered = workload(n);
    let band = banded(n, 8);
    eprintln!("\nCompression format footprints at n={n}:");
    footprint_report("scattered", &scattered);
    footprint_report("banded", &band);
    eprintln!();

    let mut g = c.benchmark_group("compression_formats");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (wname, a) in [("scattered", &scattered), ("banded", &band)] {
        g.bench_with_input(BenchmarkId::new("build_crs", wname), a, |b, a| {
            b.iter(|| black_box(Crs::from_dense(a, &mut OpCounter::new())))
        });
        g.bench_with_input(BenchmarkId::new("build_dia", wname), a, |b, a| {
            b.iter(|| black_box(Dia::from_dense(a, &mut OpCounter::new())))
        });
        g.bench_with_input(BenchmarkId::new("build_jds", wname), a, |b, a| {
            b.iter(|| black_box(Jds::from_dense(a, &mut OpCounter::new())))
        });
        g.bench_with_input(BenchmarkId::new("build_bsr4x4", wname), a, |b, a| {
            b.iter(|| black_box(Bsr::from_dense(a, 4, 4, &mut OpCounter::new()).unwrap()))
        });

        let crs = Crs::from_dense(a, &mut OpCounter::new());
        let jds = Jds::from_dense(a, &mut OpCounter::new());
        let bsr =
            Bsr::from_dense(a, 4, 4, &mut OpCounter::new()).expect("4x4 tiles divide the workload");
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64).collect();
        g.bench_with_input(BenchmarkId::new("spmv_crs", wname), &crs, |b, m| {
            b.iter(|| black_box(crs_spmv(m, &x)))
        });
        g.bench_with_input(BenchmarkId::new("spmv_jds", wname), &jds, |b, m| {
            b.iter(|| black_box(m.spmv(&x)))
        });
        g.bench_with_input(BenchmarkId::new("spmv_bsr4x4", wname), &bsr, |b, m| {
            b.iter(|| black_box(m.spmv(&x)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formats);
criterion_main!(benches);
