//! Makespan under fire at the paper's scale (n = 1000, s = 0.1):
//! how the staged and overlapped pipelines degrade as the link drop
//! rate rises, with the async ARQ retransmitting behind the source's
//! encode work.
//!
//! Besides the Criterion host timings, this bench writes the
//! `makespan_vs_drop` section of `BENCH_faults.json` at the workspace
//! root. All `*_us` values are virtual-time measurements — a pure
//! function of the machine model, the workload and the fault seed — so
//! the CI bench-regression gate pins them exactly: a protocol change
//! that makes recovery more expensive (or breaks the overlap win under
//! faults) moves a tracked number and trips the gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{upsert_bench_sections, workload};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme_with, SchemeConfig, SchemeKind, SchemeRun};
use sparsedist_multicomputer::{FaultPlan, MachineModel, Multicomputer, Phase, RetryPolicy};
use std::hint::black_box;
use std::path::Path;
use std::time::Duration;

const N: usize = 1000;
const P: usize = 16;
const FAULT_SEED: u64 = 41;
const DROPS: [f64; 4] = [0.0, 0.02, 0.05, 0.10];

fn machine(drop: f64) -> Multicomputer {
    let m = Multicomputer::virtual_machine(P, MachineModel::ibm_sp2());
    if drop > 0.0 {
        m.with_faults(FaultPlan::new(FAULT_SEED).with_drop(drop))
            .with_retry_policy(RetryPolicy::with_retries(16))
    } else {
        m
    }
}

fn staged_config() -> SchemeConfig {
    SchemeConfig {
        chunk_elems: 4096,
        ..SchemeConfig::default()
    }
}

fn overlap_config() -> SchemeConfig {
    SchemeConfig {
        chunk_elems: 4096,
        ..SchemeConfig::overlapped()
    }
}

fn retry_us(run: &SchemeRun) -> f64 {
    run.ledgers
        .iter()
        .map(|l| l.get(Phase::Retry).as_micros())
        .sum()
}

fn emit_json(c: &mut Criterion) {
    let a = workload(N);
    let part = RowBlock::new(N, N, P);

    let mut lines = vec!["{".to_string()];
    lines.push(format!(
        "    \"n\": {N}, \"p\": {P}, \"seed\": {FAULT_SEED}, \"chunk_elems\": 4096,"
    ));
    let schemes = [(SchemeKind::Ed, "ed"), (SchemeKind::Cfs, "cfs")];
    for (ki, (scheme, label)) in schemes.iter().enumerate() {
        lines.push(format!("    \"{label}\": {{"));
        for (di, &drop) in DROPS.iter().enumerate() {
            let m = machine(drop);
            let run_with = |config| {
                run_scheme_with(*scheme, &m, &a, &part, CompressKind::Crs, config)
                    .expect("drop plans are recoverable at 16 retries")
            };
            let staged = run_with(staged_config());
            let over = run_with(overlap_config());
            assert_eq!(
                over.locals, staged.locals,
                "{label} drop={drop}: overlap changed state"
            );
            let (su, ou) = (
                staged.t_makespan().as_micros(),
                over.t_makespan().as_micros(),
            );
            let comma = if di + 1 < DROPS.len() { "," } else { "" };
            lines.push(format!(
                "      \"drop{drop:.2}\": {{\"staged_us\": {su:.1}, \"overlap_us\": {ou:.1}, \
                 \"retry_us\": {:.1}, \"gain\": {:.3}}}{comma}",
                retry_us(&over),
                su / ou
            ));
            eprintln!(
                "faults {label:>3} drop={drop:.2}: staged {su:.0} us, \
                 overlapped {ou:.0} us ({:.2}x), retry {:.0} us",
                su / ou,
                retry_us(&over)
            );
        }
        let comma = if ki + 1 < schemes.len() { "," } else { "" };
        lines.push(format!("    }}{comma}"));
    }
    lines.push("  }".to_string());

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_faults.json"
    ));
    upsert_bench_sections(path, &[("makespan_vs_drop", lines.join("\n"))])
        .expect("write BENCH_faults.json");
    eprintln!("wrote {}", path.display());

    let _ = c;
}

fn bench_fault_tolerance(c: &mut Criterion) {
    let a = workload(N);
    let part = RowBlock::new(N, N, P);
    let m = machine(0.05);

    let mut g = c.benchmark_group("fault_tolerance");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (scheme, label) in [(SchemeKind::Ed, "ed"), (SchemeKind::Cfs, "cfs")] {
        g.bench_function(BenchmarkId::new(label, "staged_drop5"), |b| {
            b.iter(|| {
                black_box(run_scheme_with(
                    scheme,
                    &m,
                    &a,
                    &part,
                    CompressKind::Crs,
                    staged_config(),
                ))
            })
        });
        g.bench_function(BenchmarkId::new(label, "overlapped_drop5"), |b| {
            b.iter(|| {
                black_box(run_scheme_with(
                    scheme,
                    &m,
                    &a,
                    &part,
                    CompressKind::Crs,
                    overlap_config(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, emit_json, bench_fault_tolerance);
criterion_main!(benches);
