//! Staged vs overlapped pipeline at the paper's scale (n = 1000,
//! s = 0.1): the nonblocking-send source (`SchemeConfig::overlap`)
//! hides transfer time behind per-part encode work, shrinking the ED
//! and CFS makespans while moving exactly the same bytes.
//!
//! Besides the Criterion host timings, this bench upserts a
//! `pipeline_overlap` section into `BENCH_wire.json` at the workspace
//! root. The `*_us` keys are virtual-time makespans — deterministic for
//! a given machine model and workload — so the CI bench-regression gate
//! can pin them without run-to-run noise; the `*_bytes` keys prove the
//! overlap changes scheduling, never the wire volume.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{upsert_bench_sections, workload};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme, run_scheme_with, SchemeConfig, SchemeKind, SchemeRun};
use sparsedist_multicomputer::{MachineModel, Multicomputer};
use std::hint::black_box;
use std::path::Path;
use std::time::Duration;

const N: usize = 1000;
const P: usize = 16;

fn wire_bytes(run: &SchemeRun) -> u64 {
    run.ledgers.iter().map(|l| l.wire().bytes).sum()
}

fn emit_json(c: &mut Criterion) {
    let a = workload(N);
    let part = RowBlock::new(N, N, P);
    let machine = Multicomputer::virtual_machine(P, MachineModel::ibm_sp2());

    let mut lines = vec!["{".to_string()];
    lines.push(format!("    \"n\": {N}, \"p\": {P},"));
    let schemes = [(SchemeKind::Ed, "ed"), (SchemeKind::Cfs, "cfs")];
    for (ki, (scheme, label)) in schemes.iter().enumerate() {
        let staged = run_scheme(*scheme, &machine, &a, &part, CompressKind::Crs)
            .expect("fault-free staged run");
        let over = run_scheme_with(
            *scheme,
            &machine,
            &a,
            &part,
            CompressKind::Crs,
            SchemeConfig::overlapped(),
        )
        .expect("fault-free overlapped run");
        let (su, ou) = (
            staged.t_makespan().as_micros(),
            over.t_makespan().as_micros(),
        );
        let (sb, ob) = (wire_bytes(&staged), wire_bytes(&over));
        assert!(ou < su, "{label}: overlap must beat staged makespan");
        assert_eq!(sb, ob, "{label}: overlap must not change bytes on wire");
        let comma = if ki + 1 < schemes.len() { "," } else { "" };
        lines.push(format!(
            "    \"{label}\": {{\"staged_us\": {su:.1}, \"overlap_us\": {ou:.1}, \
             \"speedup\": {:.3}, \"staged_bytes\": {sb}, \"overlap_bytes\": {ob}}}{comma}",
            su / ou
        ));
        eprintln!(
            "pipeline {label:>3} (n={N}, p={P}, s=0.1): staged {su:.0} us, \
             overlapped {ou:.0} us ({:.2}x), bytes {sb} == {ob}",
            su / ou
        );
    }
    lines.push("  }".to_string());

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wire.json"
    ));
    upsert_bench_sections(path, &[("pipeline_overlap", lines.join("\n"))])
        .expect("write BENCH_wire.json");
    eprintln!("wrote {}", path.display());

    let _ = c;
}

fn bench_pipeline_overlap(c: &mut Criterion) {
    let a = workload(N);
    let part = RowBlock::new(N, N, P);
    let machine = Multicomputer::virtual_machine(P, MachineModel::ibm_sp2());

    let mut g = c.benchmark_group("pipeline_overlap");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (scheme, label) in [(SchemeKind::Ed, "ed"), (SchemeKind::Cfs, "cfs")] {
        g.bench_function(BenchmarkId::new(label, "staged"), |b| {
            b.iter(|| black_box(run_scheme(scheme, &machine, &a, &part, CompressKind::Crs)))
        });
        g.bench_function(BenchmarkId::new(label, "overlapped"), |b| {
            b.iter(|| {
                black_box(run_scheme_with(
                    scheme,
                    &machine,
                    &a,
                    &part,
                    CompressKind::Crs,
                    SchemeConfig::overlapped(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, emit_json, bench_pipeline_overlap);
criterion_main!(benches);
