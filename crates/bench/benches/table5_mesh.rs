//! Table 5: the SFC/CFS/ED schemes under the **2-D mesh** partition method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{render_table, run_cell, PaperTable, ProcConfig};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;
use std::hint::black_box;
use std::time::Duration;

fn bench_table5(c: &mut Criterion) {
    let spec = PaperTable::Table5Mesh.spec();
    let measured = sparsedist_bench::run_table(&spec, MachineModel::ibm_sp2());
    eprintln!("\n{}", render_table(&measured));

    let mut g = c.benchmark_group("table5_mesh");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[120usize, 240, 480] {
        for scheme in SchemeKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(scheme.label(), format!("n{n}_2x2")),
                &n,
                |b, &n| {
                    b.iter(|| {
                        black_box(run_cell(
                            PaperTable::Table5Mesh,
                            scheme,
                            n,
                            ProcConfig::Grid(2, 2),
                            CompressKind::Crs,
                            MachineModel::ibm_sp2(),
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
