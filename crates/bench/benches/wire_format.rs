//! Wire-format shootout: v1 vs v2 vs v3 packed bytes on the distribution
//! hot path, and sequential vs parallel per-part encode at the source.
//!
//! Besides the Criterion timings (`pack_roundtrip`, `encode_parallel`),
//! this bench writes `BENCH_wire.json` at the workspace root: packed-byte
//! totals per scheme/format at three sparsities, the v2-vs-v3 virtual
//! makespans (v3 charges zero extra ops, so these must stay equal), and
//! the measured host-time encode speedup, so CI can archive the wire
//! saving as an artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsedist_bench::upsert_bench_sections;
use sparsedist_core::compress::{CompressKind, Crs};
use sparsedist_core::encode::encode_part_into;
use sparsedist_core::opcount::OpCounter;
use sparsedist_core::partition::{Partition, RowBlock};
use sparsedist_core::schemes::{run_scheme_with, SchemeConfig, SchemeKind};
use sparsedist_core::wire::{self, WireFormat, WirePolicy};
use sparsedist_gen::SparseRandom;
use sparsedist_multicomputer::{MachineModel, Multicomputer, PackArena, PackBuffer};
use std::hint::black_box;
use std::path::Path;
use std::time::{Duration, Instant};

const N: usize = 1000;
const P: usize = 4;

fn array(s: f64) -> sparsedist_core::dense::Dense2D {
    SparseRandom::new(N, N)
        .sparse_ratio(s)
        .seed(0xC0FFEE)
        .generate()
}

/// Bytes the source transmits and the virtual makespan (microseconds)
/// for one scheme run under `format` with the default codec choice.
fn source_bytes_and_makespan(
    scheme: SchemeKind,
    a: &sparsedist_core::dense::Dense2D,
    part: &dyn Partition,
    format: WireFormat,
) -> (u64, f64) {
    let m = Multicomputer::virtual_machine(P, MachineModel::ibm_sp2());
    let run = run_scheme_with(
        scheme,
        &m,
        a,
        part,
        CompressKind::Crs,
        SchemeConfig {
            wire: format,
            ..SchemeConfig::default()
        },
    )
    .expect("bench distribution run");
    (run.ledgers[0].wire().bytes, run.t_makespan().as_micros())
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn encode_one(a: &sparsedist_core::dense::Dense2D, part: &dyn Partition, pid: usize) -> usize {
    let mut buf = PackBuffer::new();
    let mut ops = OpCounter::new();
    encode_part_into(
        &mut buf,
        a,
        part,
        pid,
        CompressKind::Crs,
        &WirePolicy::of(WireFormat::V2),
        &mut ops,
    );
    buf.byte_len()
}

/// Encode all `P` parts, sequentially or on core-capped scoped threads
/// (mirroring the scheme drivers' `map_parts`), and return the wall time
/// plus total encoded bytes (to keep the work observable).
fn encode_all(
    a: &sparsedist_core::dense::Dense2D,
    part: &dyn Partition,
    parallel: bool,
) -> (Duration, usize) {
    let start = Instant::now();
    let workers = if parallel { host_cores().min(P) } else { 1 };
    let total: usize = if workers < 2 {
        (0..P).map(|pid| encode_one(a, part, pid)).sum()
    } else {
        let chunk = P.div_ceil(workers);
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    sc.spawn(move || {
                        (w * chunk..((w + 1) * chunk).min(P))
                            .map(|pid| encode_one(a, part, pid))
                            .sum::<usize>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
    };
    (start.elapsed(), total)
}

/// Best-of-`reps` wall times for the sequential and parallel encodes, in
/// microseconds, with the two measurements interleaved so drift (cache
/// warm-up, CPU frequency) hits both sides equally.
fn encode_best_us(
    reps: usize,
    a: &sparsedist_core::dense::Dense2D,
    part: &dyn Partition,
) -> (f64, f64) {
    let mut seq = Duration::MAX;
    let mut par = Duration::MAX;
    for _ in 0..reps {
        seq = seq.min(encode_all(a, part, false).0);
        par = par.min(encode_all(a, part, true).0);
    }
    (seq.as_secs_f64() * 1e6, par.as_secs_f64() * 1e6)
}

fn emit_json(c: &mut Criterion) {
    let part = RowBlock::new(N, N, P);
    let mut lines = vec!["{".to_string()];
    let sparsities = [(0.01, "s0.01"), (0.1, "s0.1"), (0.5, "s0.5")];
    let schemes = [
        (SchemeKind::Sfc, "sfc"),
        (SchemeKind::Cfs, "cfs"),
        (SchemeKind::Ed, "ed"),
    ];
    let mut makespan_lines = vec!["{".to_string()];
    for (si, (s, slabel)) in sparsities.iter().enumerate() {
        let a = array(*s);
        lines.push(format!("    \"{slabel}\": {{"));
        for (ki, (scheme, klabel)) in schemes.iter().enumerate() {
            let (v1, _) = source_bytes_and_makespan(*scheme, &a, &part, WireFormat::V1);
            let (v2, m2) = source_bytes_and_makespan(*scheme, &a, &part, WireFormat::V2);
            let (v3, m3) = source_bytes_and_makespan(*scheme, &a, &part, WireFormat::V3);
            let saving = 1.0 - v2 as f64 / v1 as f64;
            let saving_v3 = 1.0 - v3 as f64 / v2 as f64;
            let comma = if ki + 1 < schemes.len() { "," } else { "" };
            lines.push(format!(
                "      \"{klabel}\": {{\"v1_bytes\": {v1}, \"v2_bytes\": {v2}, \
                 \"v3_bytes\": {v3}, \"saving\": {saving:.4}, \
                 \"saving_v3\": {saving_v3:.4}}}{comma}"
            ));
            if *s == 0.1 {
                // v3 spends host CPU, never virtual ops: equal makespans
                // here are the element-transparency invariant, archived.
                makespan_lines.push(format!(
                    "    \"{klabel}\": {{\"v2_makespan_us\": {m2:.1}, \
                     \"v3_makespan_us\": {m3:.1}}},"
                ));
            }
            eprintln!(
                "wire bytes {klabel:>3} s={s:<5} v1={v1:>9} v2={v2:>9} v3={v3:>9} \
                 saving={:5.1}% saving_v3={:5.1}%",
                saving * 100.0,
                saving_v3 * 100.0
            );
        }
        let comma = if si + 1 < sparsities.len() { "," } else { "" };
        lines.push(format!("    }}{comma}"));
    }
    lines.push("  }".to_string());
    let bytes_section = lines.join("\n");
    if let Some(last) = makespan_lines.last_mut() {
        *last = last.trim_end_matches(',').to_string();
    }
    makespan_lines.push("  }".to_string());
    let makespan_section = makespan_lines.join("\n");

    let a = array(0.1);
    let (seq_us, par_us) = encode_best_us(7, &a, &part);
    let speedup = seq_us / par_us;
    let cores = host_cores();
    eprintln!(
        "encode {P} parts on {cores} core(s): sequential {seq_us:.0} us, \
         parallel {par_us:.0} us ({speedup:.2}x)"
    );
    let encode_section = format!(
        "{{\"parts\": {P}, \"host_cores\": {cores}, \
         \"sequential_us\": {seq_us:.1}, \"parallel_us\": {par_us:.1}, \
         \"speedup\": {speedup:.3}}}"
    );

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_wire.json"
    ));
    upsert_bench_sections(
        path,
        &[
            ("n", N.to_string()),
            ("p", P.to_string()),
            ("bytes", bytes_section),
            ("makespan_s0.1", makespan_section),
            ("encode_parallel", encode_section),
        ],
    )
    .expect("write BENCH_wire.json");
    eprintln!("wrote {}", path.display());

    let _ = c;
}

fn bench_pack_roundtrip(c: &mut Criterion) {
    let a = array(0.1);
    let part = RowBlock::new(N, N, P);
    let crs = Crs::from_part_global(&a, &part, 0, &mut OpCounter::new());
    let (lrows, _) = part.local_shape(0);
    let arena = PackArena::new();

    let mut g = c.benchmark_group("pack_roundtrip");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements(
        (crs.ro().len() + 2 * crs.nnz()) as u64,
    ));
    for format in [WireFormat::V1, WireFormat::V2, WireFormat::V3] {
        let policy = WirePolicy::of(format);
        g.bench_with_input(
            BenchmarkId::new("cfs_triple", format),
            &policy,
            |b, policy| {
                b.iter(|| {
                    let mut buf = arena.checkout(crs.nnz() * 16 + crs.ro().len() * 8);
                    wire::pack_triple_into(&mut buf, crs.ro(), crs.co(), crs.vl(), N, policy);
                    let out = wire::unpack_triple(&mut buf.cursor(), lrows, policy.format)
                        .expect("round trip");
                    arena.recycle(buf);
                    black_box(out)
                })
            },
        );
    }
    g.finish();
}

fn bench_encode_parallel(c: &mut Criterion) {
    let a = array(0.1);
    let part = RowBlock::new(N, N, P);
    let mut g = c.benchmark_group("encode_parallel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    g.throughput(Throughput::Elements((N * N) as u64));
    for (label, parallel) in [("sequential", false), ("parallel", true)] {
        g.bench_with_input(
            BenchmarkId::new("encode", label),
            &parallel,
            |b, &parallel| b.iter(|| black_box(encode_all(&a, &part, parallel).1)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    emit_json,
    bench_pack_roundtrip,
    bench_encode_parallel
);
criterion_main!(benches);
