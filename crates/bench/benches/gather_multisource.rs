//! Benches for the two lifecycle extensions: gather strategies (the
//! schemes' mirror images) and multi-source ED distribution scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::workload;
use sparsedist_core::compress::CompressKind;
use sparsedist_core::gather::{gather_global, GatherStrategy};
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::multi::run_ed_multi_source;
use sparsedist_core::schemes::{run_scheme, SchemeKind};
use sparsedist_multicomputer::{MachineModel, Multicomputer};
use std::hint::black_box;
use std::time::Duration;

fn bench_gather_and_multisource(c: &mut Criterion) {
    let n = 400;
    let p = 16;
    let a = workload(n);
    let part = RowBlock::new(n, n, p);
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let dist = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();

    eprintln!("\nGather strategies (n={n}, p={p}, s=0.1): source busy time");
    for strategy in [
        GatherStrategy::Dense,
        GatherStrategy::Compressed,
        GatherStrategy::Encoded,
    ] {
        let run =
            gather_global(&machine, &dist.locals, &part, CompressKind::Crs, strategy).unwrap();
        eprintln!("  {strategy:?}: {}", run.t_gather());
    }

    eprintln!("\nMulti-source ED distribution time vs source count (n={n}, p={p}):");
    for k in [1usize, 2, 4, 8] {
        let run = run_ed_multi_source(&machine, &a, &part, k).unwrap();
        eprintln!("  k={k}: {}", run.t_distribution());
    }
    eprintln!();

    let mut g = c.benchmark_group("gather_multisource");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for strategy in [GatherStrategy::Dense, GatherStrategy::Encoded] {
        g.bench_with_input(
            BenchmarkId::new("gather", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    black_box(gather_global(
                        &machine,
                        &dist.locals,
                        &part,
                        CompressKind::Crs,
                        strategy,
                    ))
                })
            },
        );
    }
    for k in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("multisource_ed", k), &k, |b, &k| {
            b.iter(|| black_box(run_ed_multi_source(&machine, &a, &part, k)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gather_and_multisource);
criterion_main!(benches);
