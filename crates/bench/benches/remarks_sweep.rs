//! Remark 5 crossover sweep: where does SFC stop winning overall?
//!
//! Sweeps the `T_Data/T_Operation` ratio and the sparse ratio, prints the
//! measured crossover points next to the paper's predicted thresholds
//! (`(1+3s)/(1−2s)` for ED vs SFC on the row partition, `3s/(1−2s)` on
//! column/mesh), then Criterion-measures a handful of sweep points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{run_cell, PaperTable, ProcConfig};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;
use std::hint::black_box;
use std::time::Duration;

fn measured_crossover(table: PaperTable, pc: ProcConfig, n: usize) -> f64 {
    // Binary-search the T_Data/T_Op ratio where ED's total overtakes SFC's.
    let (mut lo, mut hi) = (0.0f64, 4.0f64);
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let m = MachineModel::new(40.0, 0.1 * mid, 0.1);
        let sfc = run_cell(table, SchemeKind::Sfc, n, pc, CompressKind::Crs, m);
        let ed = run_cell(table, SchemeKind::Ed, n, pc, CompressKind::Crs, m);
        if ed.t_total() < sfc.t_total() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn bench_sweep(c: &mut Criterion) {
    let s = 0.1;
    let n = 400;
    eprintln!(
        "\nRemark 5 crossover (ED vs SFC overall), measured vs paper threshold, s={s}, n={n}"
    );
    let row_pred = (1.0 + 3.0 * s) / (1.0 - 2.0 * s);
    let cm_pred = 3.0 * s / (1.0 - 2.0 * s);
    let row_meas = measured_crossover(PaperTable::Table3Row, ProcConfig::Flat(4), n);
    let col_meas = measured_crossover(PaperTable::Table4Column, ProcConfig::Flat(4), n);
    let mesh_meas = measured_crossover(PaperTable::Table5Mesh, ProcConfig::Grid(2, 2), n);
    eprintln!("  row:    predicted Td/Top > {row_pred:.3}, measured crossover {row_meas:.3}");
    eprintln!("  column: predicted Td/Top > {cm_pred:.3}, measured crossover {col_meas:.3}");
    eprintln!("  mesh:   predicted Td/Top > {cm_pred:.3}, measured crossover {mesh_meas:.3}");
    eprintln!();

    let mut g = c.benchmark_group("remarks_sweep");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for ratio in [0.5f64, 1.2, 2.0] {
        let m = MachineModel::new(40.0, 0.1 * ratio, 0.1);
        for scheme in [SchemeKind::Sfc, SchemeKind::Ed] {
            g.bench_with_input(
                BenchmarkId::new(format!("ratio_{ratio}"), scheme.label()),
                &m,
                |b, &m| {
                    b.iter(|| {
                        black_box(run_cell(
                            PaperTable::Table3Row,
                            scheme,
                            n,
                            ProcConfig::Flat(4),
                            CompressKind::Crs,
                            m,
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
