//! Real host-time microbenches of the kernels the schemes are built from:
//! CRS/CCS compression, ED encode/decode, CFS pack/unpack path, and SpMV
//! on the resulting compressed arrays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparsedist_bench::workload;
use sparsedist_core::compress::{Ccs, CompressKind, Crs};
use sparsedist_core::encode::{decode_part, encode_part};
use sparsedist_core::opcount::OpCounter;
use sparsedist_core::partition::RowBlock;
use sparsedist_ops::spmv::{crs_spmv, dense_spmv};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &n in &[200usize, 800] {
        let a = workload(n);
        let cells = (n * n) as u64;
        g.throughput(Throughput::Elements(cells));

        g.bench_with_input(BenchmarkId::new("crs_from_dense", n), &a, |b, a| {
            b.iter(|| black_box(Crs::from_dense(a, &mut OpCounter::new())))
        });
        g.bench_with_input(BenchmarkId::new("ccs_from_dense", n), &a, |b, a| {
            b.iter(|| black_box(Ccs::from_dense(a, &mut OpCounter::new())))
        });

        let part = RowBlock::new(n, n, 4);
        g.bench_with_input(BenchmarkId::new("ed_encode_part", n), &a, |b, a| {
            b.iter(|| {
                black_box(encode_part(
                    a,
                    &part,
                    0,
                    CompressKind::Crs,
                    &mut OpCounter::new(),
                ))
            })
        });
        let buf = encode_part(&a, &part, 0, CompressKind::Crs, &mut OpCounter::new());
        g.bench_with_input(BenchmarkId::new("ed_decode_part", n), &buf, |b, buf| {
            b.iter(|| {
                black_box(
                    decode_part(buf, &part, 0, CompressKind::Crs, &mut OpCounter::new()).unwrap(),
                )
            })
        });

        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / n as f64).collect();
        g.bench_with_input(BenchmarkId::new("crs_spmv", n), &crs, |b, crs| {
            b.iter(|| black_box(crs_spmv(crs, &x)))
        });
        g.bench_with_input(BenchmarkId::new("dense_spmv_baseline", n), &a, |b, a| {
            b.iter(|| black_box(dense_spmv(a, &x)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
