//! Table 3: the SFC/CFS/ED schemes under the **row** partition method.
//!
//! On startup this bench prints the full regenerated table (virtual-time,
//! the paper's layout); Criterion then measures the real host cost of each
//! scheme on a reduced grid, which tracks the same shape because the CPU
//! phases dominate host time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{render_table, run_cell, PaperTable, ProcConfig};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;
use std::hint::black_box;
use std::time::Duration;

fn bench_table3(c: &mut Criterion) {
    // Regenerate the paper's table once, at the paper's full grid.
    let spec = PaperTable::Table3Row.spec();
    let measured = sparsedist_bench::run_table(&spec, MachineModel::ibm_sp2());
    eprintln!("\n{}", render_table(&measured));

    let mut g = c.benchmark_group("table3_row");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &n in &[200usize, 400, 800] {
        for scheme in SchemeKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(scheme.label(), format!("n{n}_p4")),
                &n,
                |b, &n| {
                    b.iter(|| {
                        black_box(run_cell(
                            PaperTable::Table3Row,
                            scheme,
                            n,
                            ProcConfig::Flat(4),
                            CompressKind::Crs,
                            MachineModel::ibm_sp2(),
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
