//! The scale sweep: the paper's distribution schemes at 4096–65536
//! ranks on the event-loop engine.
//!
//! The threaded engine tops out at 1024 OS threads; the event loop
//! schedules rank tasks over virtual time in one thread, which is what
//! makes these processor counts simulable at all. This bench runs each
//! scheme at p ∈ {4096, 16384, 65536} on a fixed n = 4096 workload
//! (s = 0.1) and writes the `scale` section of `BENCH_scale.json` at
//! the workspace root:
//!
//! * `makespan_us` and `wire_bytes` are virtual-time / logical-wire
//!   measurements — pure functions of the machine model and workload,
//!   bit-stable across hosts — so the CI gate pins them exactly.
//! * `wall_ms` and `peak_rss_mb` are host measurements. Their key names
//!   deliberately do not end in `_us`/`_bytes`, keeping them out of the
//!   regression gate (CI runners are too noisy to pin host time) while
//!   still publishing the scaling curve the sweep exists to show.
//!
//! Under `--test` (the CI smoke), only the p = 4096 point runs; the
//! committed baseline carries the full sweep, and the gate ignores the
//! points a partial regeneration drops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{upsert_bench_sections, workload};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme_with, SchemeConfig, SchemeKind};
use sparsedist_multicomputer::{EngineKind, MachineModel, Multicomputer};
use std::hint::black_box;
use std::path::Path;
use std::time::{Duration, Instant};

const N: usize = 4096;
const SWEEP: [usize; 3] = [4096, 16384, 65536];
const SCHEMES: [(SchemeKind, &str); 3] = [
    (SchemeKind::Sfc, "sfc"),
    (SchemeKind::Cfs, "cfs"),
    (SchemeKind::Ed, "ed"),
];

/// Criterion's `--test` mode is the CI smoke: one pass, smallest point.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn machine(p: usize) -> Multicomputer {
    Multicomputer::virtual_machine(p, MachineModel::ibm_sp2()).with_engine(EngineKind::EventLoop)
}

/// Process peak RSS in MiB, from `/proc/self/status` (`VmHWM`). Returns
/// 0.0 where procfs is unavailable; the value is a high-water mark, so
/// the sweep runs smallest-p first and reports the mark after each point.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

fn emit_json(c: &mut Criterion) {
    let a = workload(N);
    let sweep: &[usize] = if test_mode() { &SWEEP[..1] } else { &SWEEP };

    let mut lines = vec!["{".to_string()];
    lines.push(format!("    \"n\": {N}, \"engine\": \"event\","));
    for (pi, &p) in sweep.iter().enumerate() {
        let part = RowBlock::new(N, N, p);
        let m = machine(p);
        lines.push(format!("    \"p{p}\": {{"));
        for &(scheme, label) in SCHEMES.iter() {
            let t0 = Instant::now();
            let run = run_scheme_with(
                scheme,
                &m,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig::default(),
            )
            .expect("fault-free run");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let makespan_us = run.t_makespan().as_micros();
            let wire_bytes: u64 = run.ledgers.iter().map(|l| l.wire().bytes).sum();
            // Always a trailing comma: `peak_rss_mb` closes the object.
            lines.push(format!(
                "      \"{label}\": {{\"makespan_us\": {makespan_us:.1}, \
                 \"wire_bytes\": {wire_bytes}, \"wall_ms\": {wall_ms:.1}}},"
            ));
            eprintln!(
                "scale p={p} {label:>3}: makespan {:.1} ms (virtual), \
                 wall {wall_ms:.0} ms, {wire_bytes} wire bytes",
                makespan_us / 1e3
            );
        }
        lines.push(format!("      \"peak_rss_mb\": {:.1}", peak_rss_mb()));
        let comma = if pi + 1 < sweep.len() { "," } else { "" };
        lines.push(format!("    }}{comma}"));
    }
    lines.push("  }".to_string());

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scale.json"
    ));
    upsert_bench_sections(path, &[("scale", lines.join("\n"))]).expect("write BENCH_scale.json");
    eprintln!("wrote {}", path.display());

    let _ = c;
}

fn bench_scale(c: &mut Criterion) {
    let a = workload(N);
    let p = SWEEP[0];
    let part = RowBlock::new(N, N, p);
    let m = machine(p);

    let mut g = c.benchmark_group("scale");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (scheme, label) in SCHEMES {
        g.bench_function(BenchmarkId::new(label, format!("p{p}")), |b| {
            b.iter(|| {
                black_box(run_scheme_with(
                    scheme,
                    &m,
                    &a,
                    &part,
                    CompressKind::Crs,
                    SchemeConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, emit_json, bench_scale);
criterion_main!(benches);
