//! Ablation: interconnect topology sensitivity.
//!
//! The paper's analysis assumes a uniform-cost network (its SP2 had a
//! multistage switch). This bench re-runs the schemes on ring, mesh and
//! torus interconnects with a nonzero per-hop cost and shows that the
//! SFC/CFS/ED *ranking* is topology-insensitive (the per-element volume
//! term dominates), even though absolute times shift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::workload;
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme, SchemeKind};
use sparsedist_multicomputer::{MachineModel, Multicomputer, Topology};
use std::hint::black_box;
use std::time::Duration;

fn topologies(p: usize) -> Vec<(&'static str, Topology)> {
    vec![
        ("fully_connected", Topology::FullyConnected),
        ("ring", Topology::Ring),
        ("mesh4x4", Topology::Mesh2D { pr: 4, pc: p / 4 }),
        ("torus4x4", Topology::Torus2D { pr: 4, pc: p / 4 }),
    ]
}

fn run(n: usize, p: usize, topo: Topology, scheme: SchemeKind) -> f64 {
    // A hefty per-hop cost (half a startup) to make topology matter.
    let model = MachineModel::ibm_sp2().with_hop_cost(20.0);
    let machine = Multicomputer::virtual_with_topology(p, model, topo);
    let a = workload(n);
    let part = RowBlock::new(n, n, p);
    run_scheme(scheme, &machine, &a, &part, CompressKind::Crs)
        .unwrap()
        .t_total()
        .as_millis()
}

fn bench_topology(c: &mut Criterion) {
    let (n, p) = (320usize, 16usize);
    eprintln!("\nTopology ablation (row partition, n={n}, p={p}, T_Hop=20us):");
    eprintln!("{:<18}{:>10}{:>10}{:>10}", "topology", "SFC", "CFS", "ED");
    for (name, topo) in topologies(p) {
        eprintln!(
            "{name:<18}{:>10.3}{:>10.3}{:>10.3}",
            run(n, p, topo, SchemeKind::Sfc),
            run(n, p, topo, SchemeKind::Cfs),
            run(n, p, topo, SchemeKind::Ed),
        );
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_topology");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, topo) in topologies(p) {
        g.bench_with_input(BenchmarkId::new(name, "ED"), &topo, |b, &topo| {
            b.iter(|| black_box(run(n, p, topo, SchemeKind::Ed)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
