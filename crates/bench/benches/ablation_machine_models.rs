//! Ablation: how the scheme ranking flips with the `T_Data/T_Operation`
//! ratio (DESIGN.md design-choice #1: the virtual network model is the
//! knob the paper's Remark 5 crossovers live on).
//!
//! Prints the overall (`T_Distribution + T_Compression`) ranking under a
//! compute-bound, SP2-calibrated and network-bound machine, then Criterion-
//! measures the scheme runs under each model (host time is model-
//! independent; the printed virtual times carry the ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{run_cell, PaperTable, ProcConfig};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;
use std::hint::black_box;
use std::time::Duration;

fn models() -> [(&'static str, MachineModel); 3] {
    [
        ("compute_bound", MachineModel::compute_bound()),
        ("ibm_sp2", MachineModel::ibm_sp2()),
        ("network_bound", MachineModel::network_bound()),
    ]
}

fn bench_models(c: &mut Criterion) {
    let n = 400;
    eprintln!("\nAblation: overall time (ms) vs machine model, row partition, n={n}, p=4, s=0.1");
    eprintln!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}",
        "model", "Td/Top", "SFC", "CFS", "ED"
    );
    for (name, m) in models() {
        let mut row = format!("{name:<16}{:>10.2}", m.data_op_ratio());
        for scheme in SchemeKind::ALL {
            let run = run_cell(
                PaperTable::Table3Row,
                scheme,
                n,
                ProcConfig::Flat(4),
                CompressKind::Crs,
                m,
            );
            row.push_str(&format!("{:>12.3}", run.t_total().as_millis()));
        }
        eprintln!("{row}");
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_machine_models");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, m) in models() {
        for scheme in SchemeKind::ALL {
            g.bench_with_input(BenchmarkId::new(name, scheme.label()), &m, |b, &m| {
                b.iter(|| {
                    black_box(run_cell(
                        PaperTable::Table3Row,
                        scheme,
                        n,
                        ProcConfig::Flat(4),
                        CompressKind::Crs,
                        m,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
