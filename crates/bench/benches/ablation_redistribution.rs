//! Ablation: redistribution strategies — compressed all-to-all (`Direct`,
//! `p²` startups, volume `3·nnz`) vs hub-routed (`ViaSource`, `2p`
//! startups, volume `6·nnz`). The startup-vs-volume crossover is printed,
//! then both strategies are Criterion-measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::workload;
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::{Mesh2D, RowBlock};
use sparsedist_core::redistribute::{redistribute, RedistStrategy};
use sparsedist_core::schemes::{run_scheme, SchemeKind};
use sparsedist_multicomputer::{MachineModel, Multicomputer};
use std::hint::black_box;
use std::time::Duration;

fn measure(n: usize, p: usize, strategy: RedistStrategy) -> f64 {
    let a = workload(n);
    let from = RowBlock::new(n, n, p);
    let to = Mesh2D::new(n, n, 4, p / 4);
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
    let owned = run_scheme(SchemeKind::Ed, &machine, &a, &from, CompressKind::Crs)
        .unwrap()
        .locals;
    redistribute(&machine, &owned, &from, &to, CompressKind::Crs, strategy)
        .unwrap()
        .t_total()
        .as_millis()
}

fn bench_redistribution(c: &mut Criterion) {
    let p = 16;
    eprintln!(
        "\nRedistribution row → 4x{} mesh, p={p}, s=0.1 (virtual ms):",
        p / 4
    );
    eprintln!(
        "{:>8}{:>14}{:>14}{:>10}",
        "n", "Direct", "ViaSource", "winner"
    );
    for n in [40usize, 80, 160, 320, 640] {
        let d = measure(n, p, RedistStrategy::Direct);
        let v = measure(n, p, RedistStrategy::ViaSource);
        eprintln!(
            "{n:>8}{d:>14.3}{v:>14.3}{:>10}",
            if d < v { "Direct" } else { "ViaSource" }
        );
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_redistribution");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [80usize, 320] {
        for strategy in [RedistStrategy::Direct, RedistStrategy::ViaSource] {
            g.bench_with_input(BenchmarkId::new(format!("{strategy:?}"), n), &n, |b, &n| {
                b.iter(|| black_box(measure(n, p, strategy)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_redistribution);
criterion_main!(benches);
