//! Ablation: structure-aware partitions (Ziantz-style bin packing) vs the
//! paper's ceil-block bands on skewed workloads.
//!
//! The paper's analysis carries the max local ratio `s'` exactly because
//! block bands ignore structure; balancing nonzeros shrinks the slowest
//! receiver's compression time (SFC) and unpack/decode time (CFS/ED).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::{BalancedRows, Partition, RowBlock};
use sparsedist_core::schemes::{run_scheme, SchemeKind};
use sparsedist_gen::patterns::row_skewed;
use sparsedist_multicomputer::{MachineModel, Multicomputer};
use std::hint::black_box;
use std::time::Duration;

fn bench_load_balance(c: &mut Criterion) {
    let n = 400;
    let p = 8;
    let a = row_skewed(n, n / 2, 7);
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());

    let parts: Vec<(&str, Box<dyn Partition>)> = vec![
        ("ceil_block", Box::new(RowBlock::new(n, n, p))),
        ("balanced_bands", Box::new(BalancedRows::contiguous(&a, p))),
        ("bin_packed", Box::new(BalancedRows::bin_packed(&a, p))),
    ];

    eprintln!("\nLoad-balance ablation on a row-skewed array (n={n}, p={p}):");
    eprintln!(
        "{:<16}{:>8}{:>14}{:>14}{:>14}",
        "partition", "s'", "SFC comp", "ED dist", "ED comp"
    );
    for (name, part) in &parts {
        let prof = part.nnz_profile(&a);
        let sfc = run_scheme(
            SchemeKind::Sfc,
            &machine,
            &a,
            part.as_ref(),
            CompressKind::Crs,
        )
        .unwrap();
        let ed = run_scheme(
            SchemeKind::Ed,
            &machine,
            &a,
            part.as_ref(),
            CompressKind::Crs,
        )
        .unwrap();
        eprintln!(
            "{name:<16}{:>8.4}{:>11.3}ms{:>11.3}ms{:>11.3}ms",
            prof.s_max,
            sfc.t_compression().as_millis(),
            ed.t_distribution().as_millis(),
            ed.t_compression().as_millis(),
        );
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_load_balance");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, part) in &parts {
        g.bench_with_input(BenchmarkId::new("sfc", *name), part, |b, part| {
            b.iter(|| {
                black_box(run_scheme(
                    SchemeKind::Sfc,
                    &machine,
                    &a,
                    part.as_ref(),
                    CompressKind::Crs,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_load_balance);
criterion_main!(benches);
