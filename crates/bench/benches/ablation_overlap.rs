//! Ablation: encode-then-send-all vs overlapped encode/send in the ED
//! scheme, and reduce-based vs row-conformal distributed SpMV.
//!
//! With the pipeline driver's nonblocking sends (`SchemeConfig::overlap`),
//! overlap shrinks the makespan and the mean completion time across
//! receivers while leaving every non-`Send` phase aggregate untouched;
//! the row-conformal SpMV relieves the root's send hotspot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::workload;
use sparsedist_core::compress::CompressKind;
use sparsedist_core::partition::RowBlock;
use sparsedist_core::schemes::{run_scheme, run_scheme_with, SchemeConfig, SchemeKind, SchemeRun};
use sparsedist_multicomputer::{MachineModel, Multicomputer, Phase};
use sparsedist_ops::spmv::{distributed_spmv_ledgers, distributed_spmv_rowwise_ledgers};
use std::hint::black_box;
use std::time::Duration;

fn mean_completion(run: &SchemeRun) -> f64 {
    run.ledgers
        .iter()
        .map(|l| (l.busy_total() + l.get(Phase::Wait)).as_micros())
        .sum::<f64>()
        / run.ledgers.len() as f64
}

fn bench_overlap(c: &mut Criterion) {
    let n = 400;
    let p = 16;
    let a = workload(n);
    let part = RowBlock::new(n, n, p);
    let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());

    let plain = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
    let over = run_scheme_with(
        SchemeKind::Ed,
        &machine,
        &a,
        &part,
        CompressKind::Crs,
        SchemeConfig::overlapped(),
    )
    .unwrap();
    eprintln!("\nED send discipline (n={n}, p={p}, s=0.1):");
    eprintln!(
        "  encode-all-then-send: makespan {}  mean completion {:.3}ms",
        plain.t_makespan(),
        mean_completion(&plain) / 1000.0
    );
    eprintln!(
        "  overlapped:           makespan {}  mean completion {:.3}ms",
        over.t_makespan(),
        mean_completion(&over) / 1000.0
    );

    let x = vec![1.0; n];
    let (_, lg) = distributed_spmv_ledgers(&machine, &plain, &part, &x).unwrap();
    let (_, lr) = distributed_spmv_rowwise_ledgers(&machine, &plain, &part, &x).unwrap();
    let send_max = |ls: &[sparsedist_multicomputer::PhaseLedger]| -> f64 {
        ls.iter()
            .map(|l| l.get(Phase::Send).as_micros())
            .fold(0.0, f64::max)
    };
    eprintln!("\nDistributed SpMV root hotspot (max per-rank send):");
    eprintln!("  reduce-based:  {:.3}ms", send_max(&lg) / 1000.0);
    eprintln!("  row-conformal: {:.3}ms", send_max(&lr) / 1000.0);
    eprintln!();

    let mut g = c.benchmark_group("ablation_overlap");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function(BenchmarkId::new("ed", "plain"), |b| {
        b.iter(|| {
            black_box(run_scheme(
                SchemeKind::Ed,
                &machine,
                &a,
                &part,
                CompressKind::Crs,
            ))
        })
    });
    g.bench_function(BenchmarkId::new("ed", "overlapped"), |b| {
        b.iter(|| {
            black_box(run_scheme_with(
                SchemeKind::Ed,
                &machine,
                &a,
                &part,
                CompressKind::Crs,
                SchemeConfig::overlapped(),
            ))
        })
    });
    g.bench_function(BenchmarkId::new("spmv", "reduce"), |b| {
        b.iter(|| black_box(distributed_spmv_ledgers(&machine, &plain, &part, &x)))
    });
    g.bench_function(BenchmarkId::new("spmv", "rowwise"), |b| {
        b.iter(|| {
            black_box(distributed_spmv_rowwise_ledgers(
                &machine, &plain, &part, &x,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overlap);
criterion_main!(benches);
