//! Ablation: CRS vs CCS per partition method (the paper's §4.1.2 contrast
//! between Tables 1 and 2 — the travelling-index kind decides whether the
//! receiver pays the conversion op per nonzero and how long the pointer
//! stream is).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsedist_bench::{run_cell, PaperTable, ProcConfig};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;
use std::hint::black_box;
use std::time::Duration;

fn bench_kinds(c: &mut Criterion) {
    let n = 400;
    let m = MachineModel::ibm_sp2();
    eprintln!("\nAblation: CRS vs CCS, n={n}, p=4, s=0.1 — T_Distribution / T_Compression (ms)");
    eprintln!(
        "{:<10}{:<8}{:>16}{:>16}",
        "partition", "scheme", "CRS", "CCS"
    );
    for (table, pc, label) in [
        (PaperTable::Table3Row, ProcConfig::Flat(4), "row"),
        (PaperTable::Table4Column, ProcConfig::Flat(4), "column"),
        (PaperTable::Table5Mesh, ProcConfig::Grid(2, 2), "mesh"),
    ] {
        for scheme in SchemeKind::ALL {
            let crs = run_cell(table, scheme, n, pc, CompressKind::Crs, m);
            let ccs = run_cell(table, scheme, n, pc, CompressKind::Ccs, m);
            eprintln!(
                "{label:<10}{:<8}{:>7.2}/{:>7.2}{:>8.2}/{:>7.2}",
                scheme.label(),
                crs.t_distribution().as_millis(),
                crs.t_compression().as_millis(),
                ccs.t_distribution().as_millis(),
                ccs.t_compression().as_millis(),
            );
        }
    }
    eprintln!();

    let mut g = c.benchmark_group("ablation_compression_kind");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in [CompressKind::Crs, CompressKind::Ccs] {
        for scheme in SchemeKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), scheme.label()),
                &kind,
                |b, &kind| {
                    b.iter(|| {
                        black_box(run_cell(
                            PaperTable::Table3Row,
                            scheme,
                            n,
                            ProcConfig::Flat(4),
                            kind,
                            m,
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kinds);
criterion_main!(benches);
