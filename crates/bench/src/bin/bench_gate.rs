//! CI bench-regression gate.
//!
//! Compares a freshly generated `BENCH_wire.json` against the committed
//! baseline and fails (exit 1) if any tracked metric regressed by more
//! than the threshold (default 10%). Tracked metrics are the numeric
//! leaves whose key ends in `_bytes` (wire volume — bytes per element is
//! proportional at fixed n/s) or `_us` (measured host time). Lower is
//! better for both; new keys appear and old keys disappear without
//! failing the gate, so adding a scheme or sparsity point never blocks CI.
//!
//! ```text
//! bench_gate BASELINE.json FRESH.json [--threshold 0.10]
//! ```
//!
//! The build environment is offline and dependency-free, so the JSON
//! reader below is a minimal recursive-descent parser that flattens a
//! document into `path -> f64` for its numeric leaves — all this gate
//! needs, not a general JSON library.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Flatten every numeric leaf of a JSON document into `dotted.path -> f64`.
/// Array elements are indexed (`path.0`, `path.1`, …). Non-numeric leaves
/// are skipped. Returns an error message on malformed input.
fn flatten_numbers(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    parse_value(bytes, &mut pos, &mut String::new(), &mut out)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(out)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(
    b: &[u8],
    pos: &mut usize,
    path: &mut String,
    out: &mut BTreeMap<String, f64>,
) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let saved = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&key);
                parse_value(b, pos, path, out)?;
                path.truncate(saved);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            let mut i = 0usize;
            loop {
                let saved = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&i.to_string());
                parse_value(b, pos, path, out)?;
                path.truncate(saved);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => {
                        *pos += 1;
                        i += 1;
                    }
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            parse_string(b, pos)?;
            Ok(())
        }
        Some(b't') => expect_lit(b, pos, "true"),
        Some(b'f') => expect_lit(b, pos, "false"),
        Some(b'n') => expect_lit(b, pos, "null"),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).expect("ascii number");
            let v: f64 = s
                .parse()
                .map_err(|_| format!("bad number '{s}' at byte {start}"))?;
            out.insert(path.clone(), v);
            Ok(())
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                // Keys in bench JSON are plain identifiers; keep escapes
                // verbatim rather than decoding them.
                if let Some(&e) = b.get(*pos) {
                    *pos += 1;
                    s.push('\\');
                    s.push(e as char);
                }
            }
            _ => s.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

/// A metric key the gate enforces: lower is better, regressions beyond
/// the threshold fail CI.
fn is_tracked(key: &str) -> bool {
    key.ends_with("_bytes") || key.ends_with("_us")
}

struct Row {
    key: String,
    base: f64,
    fresh: f64,
    ratio: f64,
    regressed: bool,
}

fn compare(
    base: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for (key, &b) in base {
        if !is_tracked(key) {
            continue;
        }
        let Some(&f) = fresh.get(key) else {
            // A removed metric is a bench-shape change, not a regression.
            continue;
        };
        let ratio = if b > 0.0 { f / b } else { 1.0 };
        rows.push(Row {
            key: key.clone(),
            base: b,
            fresh: f,
            ratio,
            regressed: ratio > 1.0 + threshold,
        });
    }
    rows
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.10f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold needs a number");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [base_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate BASELINE.json FRESH.json [--threshold 0.10]");
        return ExitCode::FAILURE;
    };
    let read = |p: &str| -> Result<BTreeMap<String, f64>, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        flatten_numbers(&text).map_err(|e| format!("{p}: {e}"))
    };
    let (base, fresh) = match (read(base_path), read(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rows = compare(&base, &fresh, threshold);
    if rows.is_empty() {
        eprintln!("bench_gate: no tracked metrics (*_bytes, *_us) in {base_path}");
        return ExitCode::FAILURE;
    }
    let key_w = rows.iter().map(|r| r.key.len()).max().unwrap_or(6).max(6);
    println!(
        "{:<key_w$} {:>14} {:>14} {:>8}  gate(+{:.0}%)",
        "metric",
        "baseline",
        "fresh",
        "ratio",
        threshold * 100.0
    );
    let mut failures = 0usize;
    for r in &rows {
        println!(
            "{:<key_w$} {:>14.1} {:>14.1} {:>8.3}  {}",
            r.key,
            r.base,
            r.fresh,
            r.ratio,
            if r.regressed { "FAIL" } else { "ok" }
        );
        if r.regressed {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} metric(s) regressed more than {:.0}% against {base_path}",
            threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {} metrics within threshold", rows.len());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"n": 4, "bytes": {"s0.1": {"ed": {"v1_bytes": 100, "saving": 0.5}}},
        "encode_parallel": {"sequential_us": 20.5, "list": [1, 2.5]}}"#;

    #[test]
    fn flattens_numeric_leaves_with_dotted_paths() {
        let m = flatten_numbers(DOC).unwrap();
        assert_eq!(m["n"], 4.0);
        assert_eq!(m["bytes.s0.1.ed.v1_bytes"], 100.0);
        assert_eq!(m["encode_parallel.sequential_us"], 20.5);
        assert_eq!(m["encode_parallel.list.0"], 1.0);
        assert_eq!(m["encode_parallel.list.1"], 2.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(flatten_numbers("{").is_err());
        assert!(flatten_numbers("{\"a\": }").is_err());
        assert!(flatten_numbers("{}extra").is_err());
    }

    #[test]
    fn tracked_keys_are_bytes_and_us() {
        assert!(is_tracked("bytes.s0.1.ed.v1_bytes"));
        assert!(is_tracked("encode_parallel.sequential_us"));
        assert!(!is_tracked("bytes.s0.1.ed.saving"));
        assert!(!is_tracked("n"));
    }

    #[test]
    fn regression_beyond_threshold_fails_within_passes() {
        let base = flatten_numbers(r#"{"a_bytes": 100, "b_us": 50}"#).unwrap();
        let fresh = flatten_numbers(r#"{"a_bytes": 109, "b_us": 56}"#).unwrap();
        let rows = compare(&base, &fresh, 0.10);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].regressed, "a_bytes +9% is within the gate");
        assert!(rows[1].regressed, "b_us +12% regresses");
    }

    #[test]
    fn removed_and_added_metrics_do_not_fail() {
        let base = flatten_numbers(r#"{"gone_bytes": 100}"#).unwrap();
        let fresh = flatten_numbers(r#"{"new_bytes": 5}"#).unwrap();
        assert!(compare(&base, &fresh, 0.10).is_empty());
    }

    #[test]
    fn pipeline_overlap_makespans_are_gated() {
        // The virtual-time makespans the pipeline_overlap bench emits are
        // deterministic, so the gate pins them exactly like byte counts:
        // a slower overlapped schedule is a regression, the dimensionless
        // speedup ratio is not tracked.
        let doc = r#"{"pipeline_overlap": {
            "ed": {"staged_us": 156025.2, "overlap_us": 132626.5,
                   "speedup": 1.176, "overlap_bytes": 1608000}}}"#;
        let base = flatten_numbers(doc).unwrap();
        assert!(is_tracked("pipeline_overlap.ed.staged_us"));
        assert!(is_tracked("pipeline_overlap.ed.overlap_bytes"));
        assert!(!is_tracked("pipeline_overlap.ed.speedup"));
        let fresh = flatten_numbers(
            r#"{"pipeline_overlap": {
            "ed": {"staged_us": 156025.2, "overlap_us": 155000.0,
                   "speedup": 1.007, "overlap_bytes": 1608000}}}"#,
        )
        .unwrap();
        let rows = compare(&base, &fresh, 0.10);
        let slow = rows
            .iter()
            .find(|r| r.key == "pipeline_overlap.ed.overlap_us")
            .expect("overlap_us is compared");
        assert!(slow.regressed, "losing the overlap win must trip the gate");
    }
}
