//! Regenerate the paper's tables from the simulated machine.
//!
//! ```text
//! tables                # everything (Tables 1-5, remarks) at full size
//! tables --quick        # smaller grid (seconds instead of minutes)
//! tables table3         # just one table: table3 | table4 | table5
//! tables analytic       # Tables 1-2: predicted vs measured audit
//! tables remarks        # Remark 1-5 verdicts on the measured data
//! tables --csv out.csv  # additionally dump every measured cell as CSV
//! ```

use sparsedist_bench::{
    analytic_comparison, render_csv, render_table, run_cell, run_table, PaperTable, ProcConfig,
};
use sparsedist_core::compress::CompressKind;
use sparsedist_core::cost::remarks;
use sparsedist_core::schemes::SchemeKind;
use sparsedist_multicomputer::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let which: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // Drop flags and the value following --csv.
            !(a.starts_with("--") || (*i > 0 && args[i - 1] == "--csv"))
        })
        .map(|(_, s)| s.as_str())
        .collect();
    let all = which.is_empty() || which.contains(&"all");
    let mut csv = String::new();

    let model = MachineModel::ibm_sp2();
    println!(
        "Machine model: T_Startup={}us T_Data={}us T_Operation={}us (T_Data/T_Op = {:.2})\n",
        model.t_startup,
        model.t_data,
        model.t_op,
        model.data_op_ratio()
    );

    for (key, table) in [
        ("table3", PaperTable::Table3Row),
        ("table4", PaperTable::Table4Column),
        ("table5", PaperTable::Table5Mesh),
    ] {
        if all || which.contains(&key) {
            let spec = if quick {
                table.spec().quick()
            } else {
                table.spec()
            };
            let t = run_table(&spec, model);
            println!("{}", render_table(&t));
            if csv_path.is_some() {
                let body = render_csv(&t);
                if csv.is_empty() {
                    csv.push_str(&body);
                } else {
                    // Drop the duplicate header.
                    csv.push_str(body.split_once('\n').map(|(_, rest)| rest).unwrap_or(""));
                }
            }
        }
    }

    if all || which.contains(&"analytic") {
        print_analytic(quick, model);
    }
    if all || which.contains(&"remarks") {
        print_remarks(quick, model);
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, csv).expect("write csv");
        println!("wrote {path}");
    }
}

fn print_analytic(quick: bool, model: MachineModel) {
    println!("Tables 1-2 audit: closed-form prediction vs instrumented measurement");
    println!(
        "{:<10}{:<8}{:<6}{:<8}{:>14}{:>14}{:>10}{:>14}{:>14}{:>10}",
        "Partition",
        "Scheme",
        "Comp",
        "n",
        "pred dist",
        "meas dist",
        "err",
        "pred comp",
        "meas comp",
        "err"
    );
    let n = if quick { 200 } else { 800 };
    for (table, pc, label) in [
        (PaperTable::Table3Row, ProcConfig::Flat(4), "row"),
        (PaperTable::Table4Column, ProcConfig::Flat(4), "column"),
        (PaperTable::Table5Mesh, ProcConfig::Grid(2, 2), "mesh"),
    ] {
        for kind in [CompressKind::Crs, CompressKind::Ccs] {
            for cell in analytic_comparison(table, n, pc, kind, model) {
                println!(
                    "{:<10}{:<8}{:<6}{:<8}{:>12.3}ms{:>12.3}ms{:>9.2}%{:>12.3}ms{:>12.3}ms{:>9.2}%",
                    label,
                    cell.scheme.label(),
                    kind.label(),
                    n,
                    cell.predicted.t_distribution.as_millis(),
                    cell.measured.dist_ms,
                    cell.dist_rel_err() * 100.0,
                    cell.predicted.t_compression.as_millis(),
                    cell.measured.comp_ms,
                    cell.comp_rel_err() * 100.0,
                );
            }
        }
    }
    println!();
}

fn print_remarks(quick: bool, model: MachineModel) {
    let n = if quick { 400 } else { 1000 };
    let s = sparsedist_bench::PAPER_SPARSE_RATIO;
    println!(
        "Remark verdicts at n={n}, s={s}, T_Data/T_Op={:.2}",
        model.data_op_ratio()
    );

    let cell = |table, scheme, pc| run_cell(table, scheme, n, pc, CompressKind::Crs, model);

    // Remark 1/2: distribution-time ordering (row partition).
    let sfc = cell(PaperTable::Table3Row, SchemeKind::Sfc, ProcConfig::Flat(4));
    let cfs = cell(PaperTable::Table3Row, SchemeKind::Cfs, ProcConfig::Flat(4));
    let ed = cell(PaperTable::Table3Row, SchemeKind::Ed, ProcConfig::Flat(4));
    println!(
        "  Remark 1 (ED dist fastest):        measured {} — ED {:.3}ms CFS {:.3}ms SFC {:.3}ms",
        ed.t_distribution() < cfs.t_distribution() && ed.t_distribution() < sfc.t_distribution(),
        ed.t_distribution().as_millis(),
        cfs.t_distribution().as_millis(),
        sfc.t_distribution().as_millis(),
    );
    println!(
        "  Remark 2 (CFS dist < SFC dist):    predicted {} measured {}",
        remarks::remark2_cfs_dist_beats_sfc(s, &model),
        cfs.t_distribution() < sfc.t_distribution(),
    );
    println!(
        "  Remark 3 (comp: SFC < CFS < ED):   measured {}",
        sfc.t_compression() < cfs.t_compression() && cfs.t_compression() < ed.t_compression(),
    );
    println!(
        "  Remark 4 (ED total < CFS total):   measured {}",
        ed.t_total() < cfs.t_total(),
    );
    println!(
        "  Remark 5 row (ED beats SFC):       predicted {} measured {}",
        remarks::remark5_row_ed_beats_sfc(s, &model),
        ed.t_total() < sfc.t_total(),
    );
    println!(
        "  Remark 5 row (CFS beats SFC):      predicted {} measured {}",
        remarks::remark5_row_cfs_beats_sfc(s, &model),
        cfs.t_total() < sfc.t_total(),
    );

    let sfc = cell(
        PaperTable::Table4Column,
        SchemeKind::Sfc,
        ProcConfig::Flat(4),
    );
    let cfs = cell(
        PaperTable::Table4Column,
        SchemeKind::Cfs,
        ProcConfig::Flat(4),
    );
    let ed = cell(
        PaperTable::Table4Column,
        SchemeKind::Ed,
        ProcConfig::Flat(4),
    );
    println!(
        "  Remark 5 column (ED beats SFC):    predicted {} measured {}",
        remarks::remark5_colmesh_ed_beats_sfc(s, &model),
        ed.t_total() < sfc.t_total(),
    );
    println!(
        "  Remark 5 column (CFS beats SFC):   predicted {} measured {}",
        remarks::remark5_colmesh_cfs_beats_sfc(s, &model),
        cfs.t_total() < sfc.t_total(),
    );
    println!();
}
