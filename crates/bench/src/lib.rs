#![warn(missing_docs)]

//! Shared machinery for regenerating the paper's tables.
//!
//! Table 3 (row partition), Table 4 (column partition) and Table 5 (2-D
//! mesh partition) all have the same shape: for each processor count and
//! each array size, the measured `T_Distribution` and `T_Compression` of
//! the SFC, CFS and ED schemes at sparse ratio 0.1. [`run_table`] produces
//! that grid on the simulated machine and [`render_table`] prints it in
//! the paper's layout (times in milliseconds).
//!
//! The analytic side (Tables 1–2) is covered by [`analytic_comparison`],
//! which prints predicted-vs-measured for every scheme so the closed forms
//! of `sparsedist_core::cost` can be audited at a glance.

use sparsedist_core::compress::CompressKind;
use sparsedist_core::cost::{predict, CostInput, PartitionMethod, SchemeCost};
use sparsedist_core::partition::{ColBlock, Mesh2D, Partition, RowBlock};
use sparsedist_core::schemes::{run_scheme, SchemeKind, SchemeRun};
use sparsedist_gen::SparseRandom;
use sparsedist_multicomputer::{MachineModel, Multicomputer};

/// The paper's fixed experimental sparse ratio (§5).
pub const PAPER_SPARSE_RATIO: f64 = 0.1;

/// A processor configuration: flat count or mesh grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcConfig {
    /// `p` processors in a row/column partition.
    Flat(usize),
    /// A `pr × pc` mesh.
    Grid(usize, usize),
}

impl ProcConfig {
    /// Total processor count.
    pub fn nprocs(&self) -> usize {
        match *self {
            ProcConfig::Flat(p) => p,
            ProcConfig::Grid(pr, pc) => pr * pc,
        }
    }

    /// Label as the paper prints it (`4` or `2x2`).
    pub fn label(&self) -> String {
        match *self {
            ProcConfig::Flat(p) => p.to_string(),
            ProcConfig::Grid(pr, pc) => format!("{pr}x{pc}"),
        }
    }
}

/// Which of the paper's measured tables to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperTable {
    /// Table 3: row partition.
    Table3Row,
    /// Table 4: column partition.
    Table4Column,
    /// Table 5: 2-D mesh partition.
    Table5Mesh,
}

impl PaperTable {
    /// The paper's exact parameter grid for this table.
    pub fn spec(&self) -> TableSpec {
        match self {
            PaperTable::Table3Row => TableSpec {
                title: "Table 3: row partition method (CRS)",
                sizes: vec![200, 400, 800, 1000, 2000],
                procs: vec![
                    ProcConfig::Flat(4),
                    ProcConfig::Flat(16),
                    ProcConfig::Flat(32),
                ],
                table: *self,
            },
            PaperTable::Table4Column => TableSpec {
                title: "Table 4: column partition method (CRS)",
                sizes: vec![200, 400, 800, 1000, 2000],
                procs: vec![
                    ProcConfig::Flat(4),
                    ProcConfig::Flat(16),
                    ProcConfig::Flat(32),
                ],
                table: *self,
            },
            PaperTable::Table5Mesh => TableSpec {
                title: "Table 5: 2D mesh partition method (CRS)",
                sizes: vec![120, 240, 480, 960, 1920],
                procs: vec![
                    ProcConfig::Grid(2, 2),
                    ProcConfig::Grid(4, 4),
                    ProcConfig::Grid(8, 8),
                ],
                table: *self,
            },
        }
    }

    /// Build this table's partition for a given size and processor config.
    pub fn partition(&self, n: usize, pc: ProcConfig) -> Box<dyn Partition> {
        match (self, pc) {
            (PaperTable::Table3Row, ProcConfig::Flat(p)) => Box::new(RowBlock::new(n, n, p)),
            (PaperTable::Table4Column, ProcConfig::Flat(p)) => Box::new(ColBlock::new(n, n, p)),
            (PaperTable::Table5Mesh, ProcConfig::Grid(pr, pcc)) => {
                Box::new(Mesh2D::new(n, n, pr, pcc))
            }
            _ => panic!("processor config {pc:?} does not fit {self:?}"),
        }
    }

    /// The matching analytic [`PartitionMethod`].
    pub fn method(&self, pc: ProcConfig) -> PartitionMethod {
        match (self, pc) {
            (PaperTable::Table3Row, _) => PartitionMethod::Row,
            (PaperTable::Table4Column, _) => PartitionMethod::Column,
            (PaperTable::Table5Mesh, ProcConfig::Grid(pr, pcc)) => {
                PartitionMethod::Mesh { pr, pc: pcc }
            }
            (PaperTable::Table5Mesh, ProcConfig::Flat(_)) => {
                panic!("mesh table needs a Grid processor config")
            }
        }
    }
}

/// Parameter grid for one table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table heading.
    pub title: &'static str,
    /// Array sizes (`n` for `n × n`).
    pub sizes: Vec<usize>,
    /// Processor configurations.
    pub procs: Vec<ProcConfig>,
    /// Which table this is.
    pub table: PaperTable,
}

impl TableSpec {
    /// Restrict to the smaller half of the grid (for quick runs / CI).
    pub fn quick(mut self) -> Self {
        self.sizes.truncate(3);
        self.procs.truncate(2);
        self
    }
}

/// One measured cell: distribution and compression times in ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTimes {
    /// `T_Distribution`, milliseconds.
    pub dist_ms: f64,
    /// `T_Compression`, milliseconds.
    pub comp_ms: f64,
}

impl From<&SchemeRun> for CellTimes {
    fn from(run: &SchemeRun) -> Self {
        CellTimes {
            dist_ms: run.t_distribution().as_millis(),
            comp_ms: run.t_compression().as_millis(),
        }
    }
}

/// Generate the standard workload for a cell (uniform random, exact
/// `s = 0.1`, seed derived from the size so every scheme sees the same
/// array).
pub fn workload(n: usize) -> sparsedist_core::dense::Dense2D {
    SparseRandom::new(n, n)
        .sparse_ratio(PAPER_SPARSE_RATIO)
        .seed(0xC0FFEE ^ n as u64)
        .generate()
}

/// Run one (scheme, size, processor-config) cell of a table on the given
/// machine model.
pub fn run_cell(
    table: PaperTable,
    scheme: SchemeKind,
    n: usize,
    pc: ProcConfig,
    kind: CompressKind,
    model: MachineModel,
) -> SchemeRun {
    let a = workload(n);
    let part = table.partition(n, pc);
    let machine = Multicomputer::virtual_machine(pc.nprocs(), model);
    run_scheme(scheme, &machine, &a, part.as_ref(), kind).expect("fault-free run")
}

/// A fully measured table: `grid[proc][scheme][size]`.
#[derive(Debug, Clone)]
pub struct MeasuredTable {
    /// The spec that was run.
    pub spec: TableSpec,
    /// `grid[proc_idx][scheme_idx][size_idx]`.
    pub grid: Vec<Vec<Vec<CellTimes>>>,
}

/// Measure a whole table (the paper measures with CRS compression, §5).
pub fn run_table(spec: &TableSpec, model: MachineModel) -> MeasuredTable {
    let grid = spec
        .procs
        .iter()
        .map(|&pc| {
            SchemeKind::ALL
                .iter()
                .map(|&scheme| {
                    spec.sizes
                        .iter()
                        .map(|&n| {
                            let run = run_cell(spec.table, scheme, n, pc, CompressKind::Crs, model);
                            CellTimes::from(&run)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    MeasuredTable {
        spec: spec.clone(),
        grid,
    }
}

/// Render a measured table in the paper's layout.
pub fn render_table(t: &MeasuredTable) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", t.spec.title));
    out.push_str(&format!("{:<8}{:<8}{:<16}", "Procs", "Scheme", "Cost"));
    for &n in &t.spec.sizes {
        out.push_str(&format!("{:>12}", format!("{n}x{n}")));
    }
    out.push('\n');
    let dashes = 32 + 12 * t.spec.sizes.len();
    out.push_str(&format!("{}\n", "-".repeat(dashes)));
    for (pi, &pc) in t.spec.procs.iter().enumerate() {
        for (si, scheme) in SchemeKind::ALL.iter().enumerate() {
            for (cost_label, pick) in [("T_Distribution", 0usize), ("T_Compression", 1usize)] {
                let proc_label = if si == 0 && pick == 0 {
                    pc.label()
                } else {
                    String::new()
                };
                let scheme_label = if pick == 0 { scheme.label() } else { "" };
                out.push_str(&format!("{proc_label:<8}{scheme_label:<8}{cost_label:<16}"));
                for (ni, _) in t.spec.sizes.iter().enumerate() {
                    let cell = t.grid[pi][si][ni];
                    let v = if pick == 0 {
                        cell.dist_ms
                    } else {
                        cell.comp_ms
                    };
                    out.push_str(&format!("{v:>12.3}"));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!("{}\n", "-".repeat(dashes)));
    }
    out.push_str("Times in ms (virtual, IBM SP2-calibrated model)\n");
    out
}

/// Render a measured table as CSV rows
/// (`table,procs,scheme,n,dist_ms,comp_ms`), for downstream plotting.
pub fn render_csv(t: &MeasuredTable) -> String {
    let mut out = String::from("table,procs,scheme,n,dist_ms,comp_ms\n");
    let tname = match t.spec.table {
        PaperTable::Table3Row => "table3_row",
        PaperTable::Table4Column => "table4_column",
        PaperTable::Table5Mesh => "table5_mesh",
    };
    for (pi, pc) in t.spec.procs.iter().enumerate() {
        for (si, scheme) in SchemeKind::ALL.iter().enumerate() {
            for (ni, n) in t.spec.sizes.iter().enumerate() {
                let cell = t.grid[pi][si][ni];
                out.push_str(&format!(
                    "{tname},{},{},{n},{:.6},{:.6}\n",
                    pc.label(),
                    scheme.label(),
                    cell.dist_ms,
                    cell.comp_ms
                ));
            }
        }
    }
    out
}

/// Predicted-vs-measured comparison for one cell (the Tables 1–2 audit).
#[derive(Debug, Clone, Copy)]
pub struct AnalyticCell {
    /// Which scheme.
    pub scheme: SchemeKind,
    /// Closed-form prediction.
    pub predicted: SchemeCost,
    /// Instrumented measurement.
    pub measured: CellTimes,
}

impl AnalyticCell {
    /// Relative error of the distribution-time prediction.
    pub fn dist_rel_err(&self) -> f64 {
        let p = self.predicted.t_distribution.as_millis();
        (p - self.measured.dist_ms).abs() / self.measured.dist_ms.max(1e-12)
    }

    /// Relative error of the compression-time prediction.
    pub fn comp_rel_err(&self) -> f64 {
        let p = self.predicted.t_compression.as_millis();
        (p - self.measured.comp_ms).abs() / self.measured.comp_ms.max(1e-12)
    }
}

/// Compare the closed forms against instrumented runs for one
/// (table, size, procs, compression) point.
pub fn analytic_comparison(
    table: PaperTable,
    n: usize,
    pc: ProcConfig,
    kind: CompressKind,
    model: MachineModel,
) -> Vec<AnalyticCell> {
    let a = workload(n);
    let part = table.partition(n, pc);
    let prof = part.nnz_profile(&a);
    let inp = CostInput {
        n,
        p: pc.nprocs(),
        s: a.sparse_ratio(),
        s_max: prof.s_max,
    };
    let machine = Multicomputer::virtual_machine(pc.nprocs(), model);
    SchemeKind::ALL
        .iter()
        .map(|&scheme| {
            let run =
                run_scheme(scheme, &machine, &a, part.as_ref(), kind).expect("fault-free run");
            AnalyticCell {
                scheme,
                predicted: predict(scheme, table.method(pc), kind, &inp, &model),
                measured: CellTimes::from(&run),
            }
        })
        .collect()
}

/// Split the top level of a JSON object into `(key, raw value)` pairs,
/// preserving order and each value's original formatting. Only the
/// shallow structure is parsed — values stay verbatim text, so a section
/// written by one bench survives a rewrite by another.
pub fn split_bench_sections(json: &str) -> Result<Vec<(String, String)>, String> {
    let inner = json
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("top level is not a JSON object")?;
    let bytes = inner.as_bytes();
    let mut sections = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != b'"' {
            return Err(format!("expected a key at byte {i}"));
        }
        let kstart = i + 1;
        let mut j = kstart;
        while j < bytes.len() && bytes[j] != b'"' {
            j += if bytes[j] == b'\\' { 2 } else { 1 };
        }
        if j >= bytes.len() {
            return Err("unterminated key".to_string());
        }
        let key = inner[kstart..j].to_string();
        i = j + 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(format!("missing `:` after key {key:?}"));
        }
        i += 1;
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        let vstart = i;
        let mut depth: i64 = 0;
        let mut in_str = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_str {
                if c == b'\\' {
                    i += 1;
                } else if c == b'"' {
                    in_str = false;
                }
            } else {
                match c {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if depth != 0 || in_str {
            return Err(format!("unbalanced value for key {key:?}"));
        }
        sections.push((key, inner[vstart..i].trim_end().to_string()));
        i += 1; // past the separating comma, if any
    }
    Ok(sections)
}

/// Merge `sections` into the top level of the JSON object at `path` and
/// write it back: existing keys are replaced in place (order preserved),
/// new keys are appended, and every section some other bench wrote is
/// kept verbatim. A missing or unparseable file starts from `{}` — the
/// benches must be runnable on a clean checkout.
pub fn upsert_bench_sections(
    path: &std::path::Path,
    sections: &[(&str, String)],
) -> std::io::Result<()> {
    let mut merged = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| split_bench_sections(&text).ok())
        .unwrap_or_default();
    for (key, value) in sections {
        match merged.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => merged.push((key.to_string(), value.clone())),
        }
    }
    let body = merged
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(path, format!("{{\n{body}\n}}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_exact_ratio() {
        let a = workload(200);
        assert_eq!(a.nnz(), 4000);
    }

    #[test]
    fn split_bench_sections_keeps_raw_text() {
        let json = "{\n  \"n\": 1000,\n  \"bytes\": {\n    \"s0.1\": {\"sfc\": 1}\n  },\n  \"note\": \"a, b\"\n}\n";
        let got = split_bench_sections(json).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], ("n".to_string(), "1000".to_string()));
        assert_eq!(got[1].0, "bytes");
        assert!(got[1].1.starts_with('{') && got[1].1.ends_with('}'));
        assert!(got[1].1.contains("\"s0.1\""));
        // A comma inside a string does not split the section.
        assert_eq!(got[2], ("note".to_string(), "\"a, b\"".to_string()));
    }

    #[test]
    fn split_bench_sections_rejects_non_objects() {
        assert!(split_bench_sections("[1, 2]").is_err());
        assert!(split_bench_sections("{\"k\": {").is_err());
    }

    #[test]
    fn upsert_replaces_updates_and_appends() {
        let path = std::env::temp_dir().join(format!("bench_upsert_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Missing file: starts from an empty object.
        upsert_bench_sections(
            &path,
            &[("a", "1".to_string()), ("b", "{\"x\": 2}".to_string())],
        )
        .unwrap();
        // A second writer updates one section and adds its own; the
        // section it never mentions (`b`) survives verbatim.
        upsert_bench_sections(
            &path,
            &[("a", "3".to_string()), ("c", "[4, 5]".to_string())],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            text,
            "{\n  \"a\": 3,\n  \"b\": {\"x\": 2},\n  \"c\": [4, 5]\n}\n"
        );
    }

    #[test]
    fn quick_spec_shrinks() {
        let spec = PaperTable::Table3Row.spec().quick();
        assert_eq!(spec.sizes, vec![200, 400, 800]);
        assert_eq!(spec.procs.len(), 2);
    }

    #[test]
    fn table3_quick_orderings() {
        // The headline shape on a quick grid: ED dist < CFS dist < SFC
        // dist and SFC comp < CFS comp < ED comp, every cell.
        let spec = PaperTable::Table3Row.spec().quick();
        let t = run_table(&spec, MachineModel::ibm_sp2());
        for (pi, _) in spec.procs.iter().enumerate() {
            for (ni, _) in spec.sizes.iter().enumerate() {
                let sfc = t.grid[pi][0][ni];
                let cfs = t.grid[pi][1][ni];
                let ed = t.grid[pi][2][ni];
                assert!(ed.dist_ms < cfs.dist_ms && cfs.dist_ms < sfc.dist_ms);
                assert!(sfc.comp_ms < cfs.comp_ms && cfs.comp_ms < ed.comp_ms);
            }
        }
    }

    #[test]
    fn analytic_predictions_match_measurement_closely() {
        // With p | n, the closed forms should agree with the instrumented
        // runs to well under 1%.
        for (table, pc) in [
            (PaperTable::Table3Row, ProcConfig::Flat(4)),
            (PaperTable::Table4Column, ProcConfig::Flat(4)),
            (PaperTable::Table5Mesh, ProcConfig::Grid(2, 2)),
        ] {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                let cells = analytic_comparison(table, 200, pc, kind, MachineModel::ibm_sp2());
                for c in cells {
                    assert!(
                        c.dist_rel_err() < 0.01,
                        "{table:?} {kind} {}: dist err {}",
                        c.scheme,
                        c.dist_rel_err()
                    );
                    assert!(
                        c.comp_rel_err() < 0.01,
                        "{table:?} {kind} {}: comp err {}",
                        c.scheme,
                        c.comp_rel_err()
                    );
                }
            }
        }
    }

    #[test]
    fn render_contains_all_schemes_and_sizes() {
        let spec = TableSpec {
            title: "test",
            sizes: vec![40, 80],
            procs: vec![ProcConfig::Flat(4)],
            table: PaperTable::Table3Row,
        };
        let t = run_table(&spec, MachineModel::ibm_sp2());
        let s = render_table(&t);
        for needle in ["SFC", "CFS", "ED", "40x40", "80x80", "T_Distribution"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
