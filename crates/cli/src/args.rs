//! Minimal argument parsing: `command [positional…] [--flag value]…`.

use std::collections::BTreeMap;
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared with no value.
    MissingValue(String),
    /// No command word was given.
    NoCommand,
    /// A flag value failed to parse.
    BadValue {
        /// The flag name (without dashes).
        flag: String,
        /// The value supplied.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A required flag or positional was absent.
    Missing(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::NoCommand => write!(f, "no command given (try 'sparsedist help')"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value}: expected {expected}")
            }
            ArgError::Missing(what) => write!(f, "missing required {what}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Parsed {
    /// The command word.
    pub command: String,
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--flag value` pairs.
    pub flags: BTreeMap<String, String>,
}

impl Parsed {
    /// Parse `argv` (excluding the program name).
    pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
        let mut it = argv.iter().peekable();
        let command = it.next().cloned().ok_or(ArgError::NoCommand)?;
        let mut out = Parsed {
            command,
            ..Parsed::default()
        };
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.into()))?;
                out.flags.insert(name.to_string(), value.clone());
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// A flag as a string, with a default.
    pub fn flag_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// A flag parsed as `usize`, with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: v.clone(),
                expected: "an unsigned integer",
            }),
        }
    }

    /// A flag parsed as `f64`, with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: name.into(),
                value: v.clone(),
                expected: "a number",
            }),
        }
    }

    /// Positional argument `i`, or an error naming it.
    pub fn positional(&self, i: usize, what: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or(ArgError::Missing(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_positionals_flags() {
        let p = Parsed::parse(&argv("gen out.mtx --rows 100 --ratio 0.1")).unwrap();
        assert_eq!(p.command, "gen");
        assert_eq!(p.positional, vec!["out.mtx"]);
        assert_eq!(p.flag_or("rows", "0"), "100");
        assert_eq!(p.usize_or("rows", 0).unwrap(), 100);
        assert_eq!(p.f64_or("ratio", 0.5).unwrap(), 0.1);
        assert_eq!(p.f64_or("absent", 0.5).unwrap(), 0.5);
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(Parsed::parse(&[]), Err(ArgError::NoCommand));
    }

    #[test]
    fn dangling_flag_rejected() {
        assert_eq!(
            Parsed::parse(&argv("gen --rows")),
            Err(ArgError::MissingValue("rows".into()))
        );
    }

    #[test]
    fn bad_numeric_value_reported() {
        let p = Parsed::parse(&argv("gen --rows abc")).unwrap();
        let err = p.usize_or("rows", 1).unwrap_err();
        assert!(err.to_string().contains("expected an unsigned integer"));
    }

    #[test]
    fn positional_accessor() {
        let p = Parsed::parse(&argv("info file.mtx")).unwrap();
        assert_eq!(p.positional(0, "input file").unwrap(), "file.mtx");
        assert!(p.positional(1, "output file").is_err());
    }
}
