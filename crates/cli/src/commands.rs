//! The `sparsedist` subcommands.

use crate::args::Parsed;
use sparsedist::array::DistributedSparseArray;
use sparsedist_core::compress::{Ccs, CompressKind, Coo, Crs};
use sparsedist_core::cost::{predict, CostInput, PartitionMethod};
use sparsedist_core::dense::Dense2D;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::gather::GatherStrategy;
use sparsedist_core::partition::{ColBlock, ColCyclic, Mesh2D, Partition, RowBlock, RowCyclic};
use sparsedist_core::redistribute::RedistStrategy;
use sparsedist_core::schemes::{run_scheme, run_scheme_with, SchemeConfig, SchemeKind};
use sparsedist_core::wire::{self, CodecChoice, StreamBytes, WireFormat, WirePolicy};
use sparsedist_gen::{matrixmarket, patterns, SparseRandom};
use sparsedist_multicomputer::timing::{render_fault_summary, render_timeline};
use sparsedist_multicomputer::{
    chrome_trace_json, metrics_json, render_phase_table, render_waterfall, EngineKind, FaultPlan,
    MachineModel, MemorySink, Multicomputer, Phase, RankTrace, RetryPolicy,
};
use sparsedist_ops::spmv::distributed_spmv;
use std::fmt::Write as _;
use std::sync::Arc;

/// Help text.
pub const USAGE: &str = "\
sparsedist — sparse array distribution toolkit

USAGE:
  sparsedist gen OUT.mtx [--rows N] [--cols N] [--ratio S] [--seed K]
                         [--pattern uniform|banded|laplacian|clustered]
  sparsedist info FILE.mtx
  sparsedist distribute FILE.mtx [--scheme sfc|cfs|ed] [--partition row|column|mesh|rowcyclic|colcyclic]
                         [--procs P] [--grid RxC] [--kind crs|ccs] [--model sp2|compute|network]
                         [--timeline yes] [--faults SPEC] [--retries N]
                         [--wire v1|v2|v3] [--codec auto|raw|delta|packed]
                         [--parallel yes] [--overlap yes]
                         [--chunk-elems N] [--streams yes] [--trace OUT.json]
                         [--engine auto|threaded|event]

  --faults takes comma-separated key=value tokens, e.g.
  'seed=7,drop=0.2' or 'dead=2' or 'corrupt@0-1=0.5,phase=send' or
  'die=1:500' (rank 1 dies 500 µs into the run; parts re-homed mid-stream);
  --retries bounds retransmissions per message (default 6);
  --overlap sends each part as soon as it is encoded (nonblocking isend);
  --chunk-elems streams each part as framed chunks of at most N elements;
  --wire v3 layers per-stream codecs under a negotiation byte; --codec
  forces one ('auto' prices encode CPU against wire bytes per message
  with the --model coefficients — the Remark-5 crossover at runtime);
  --streams prints the per-stream bytes report (indices vs values, raw
  vs encoded) behind the README bytes/element table;
  --trace writes a Chrome-trace JSON of the run (load in Perfetto);
  --engine picks the SPMD backend: 'auto' (default) uses OS threads up
  to 1024 ranks and the deterministic event loop above, 'threaded' and
  'event' force a backend. Both produce bit-identical ledgers.
  sparsedist trace FILE.mtx [--scheme …] [--partition …] [--procs P] [--kind …]
                         [--model …] [--wire …] [--parallel yes] [--overlap yes]
                         [--chunk-elems N] [--width N]
                         [--out TRACE.json] [--metrics METRICS.json]
  sparsedist chaos [--seeds N] [--procs P] [--rows N] [--ratio S]
                         [--scheme sfc|cfs|ed|all] [--retries N]
                         [--wire v1|v2|v3] [--codec auto|raw|delta|packed]
                         [--parallel yes] [--overlap yes]
                         [--chunk-elems N] [--watchdog-ms MS]
                         [--engine auto|threaded|event]

  chaos sweeps N deterministically seeded fault plans (drops, corruption,
  delays, mid-run rank deaths) over the chosen scheme(s), verifying that
  every run either reconstructs the golden array exactly or fails with a
  typed error — never a panic or a hang (a virtual-clock watchdog trips
  protocol stalls). The same seeds always generate the same plans.
  sparsedist simcheck [--procs P] [--rows N] [--ratio S] [--scheme sfc|cfs|ed]
                         [--config pipeline|routed|chaos|all] [--seeds N]
                         [--max-schedules N]

  simcheck drives one scheme run on the deterministic event loop through
  EVERY message-delivery interleaving (--procs 2..=4; the explorer
  branches the scheduler wherever more than one rank is runnable and
  sweeps the tree depth-first by replay) and verifies that ledgers,
  local arrays and owner maps are bit-identical across all schedules
  and that no schedule deadlocks — the dynamic twin of the lint C
  rules. 'routed' injects a mid-stream rank death so parts re-home
  while frames are in flight; 'chaos' sweeps --seeds seeded fault
  plans. Nonzero exit on divergence, deadlock or truncation.
  sparsedist advise FILE.mtx [--procs P] [--model sp2|compute|network]
  sparsedist spmv FILE.mtx [--procs P] [--scheme ed]
  sparsedist checkpoint FILE.mtx DIR [--procs P] [--scheme ed] [--partition …]
  sparsedist restore DIR OUT.mtx [--procs P] [--partition …] [--rows R] [--cols C]
  sparsedist pipeline FILE.mtx [--procs P] [--grid RxC]
  sparsedist help
";

/// Command error: a plain message.
pub type CmdError = String;

fn parse_scheme(s: &str) -> Result<SchemeKind, CmdError> {
    match s {
        "sfc" => Ok(SchemeKind::Sfc),
        "cfs" => Ok(SchemeKind::Cfs),
        "ed" => Ok(SchemeKind::Ed),
        other => Err(format!("unknown scheme '{other}' (sfc|cfs|ed)")),
    }
}

fn parse_kind(s: &str) -> Result<CompressKind, CmdError> {
    match s {
        "crs" => Ok(CompressKind::Crs),
        "ccs" => Ok(CompressKind::Ccs),
        other => Err(format!("unknown compression '{other}' (crs|ccs)")),
    }
}

fn parse_wire(s: &str) -> Result<WireFormat, CmdError> {
    match s {
        "v1" => Ok(WireFormat::V1),
        "v2" => Ok(WireFormat::V2),
        "v3" => Ok(WireFormat::V3),
        other => Err(format!("unknown wire format '{other}' (v1|v2|v3)")),
    }
}

fn parse_codec(s: &str) -> Result<CodecChoice, CmdError> {
    match s {
        "auto" => Ok(CodecChoice::Auto),
        "raw" => Ok(CodecChoice::Raw),
        "delta" => Ok(CodecChoice::Delta),
        "packed" => Ok(CodecChoice::Packed),
        other => Err(format!("unknown codec '{other}' (auto|raw|delta|packed)")),
    }
}

fn parse_model(s: &str) -> Result<MachineModel, CmdError> {
    match s {
        "sp2" => Ok(MachineModel::ibm_sp2()),
        "compute" => Ok(MachineModel::compute_bound()),
        "network" => Ok(MachineModel::network_bound()),
        other => Err(format!("unknown model '{other}' (sp2|compute|network)")),
    }
}

fn parse_grid(s: &str) -> Result<(usize, usize), CmdError> {
    let (a, b) = s
        .split_once('x')
        .ok_or_else(|| format!("grid '{s}' must look like 2x2"))?;
    let pr = a.parse().map_err(|_| format!("bad grid rows '{a}'"))?;
    let pc = b.parse().map_err(|_| format!("bad grid cols '{b}'"))?;
    Ok((pr, pc))
}

fn build_partition(
    p: &Parsed,
    rows: usize,
    cols: usize,
    procs: usize,
) -> Result<Box<dyn Partition>, CmdError> {
    match p.flag_or("partition", "row") {
        "row" => Ok(Box::new(RowBlock::new(rows, cols, procs))),
        "column" => Ok(Box::new(ColBlock::new(rows, cols, procs))),
        "rowcyclic" => Ok(Box::new(RowCyclic::new(rows, cols, procs))),
        "colcyclic" => Ok(Box::new(ColCyclic::new(rows, cols, procs))),
        "mesh" => {
            let (pr, pc) = parse_grid(p.flag_or("grid", "2x2"))?;
            if pr * pc != procs {
                return Err(format!("grid {pr}x{pc} does not match --procs {procs}"));
            }
            Ok(Box::new(Mesh2D::new(rows, cols, pr, pc)))
        }
        other => Err(format!(
            "unknown partition '{other}' (row|column|mesh|rowcyclic|colcyclic)"
        )),
    }
}

fn parse_engine(s: &str) -> Result<Option<EngineKind>, CmdError> {
    match s {
        "auto" => Ok(None),
        "threaded" => Ok(Some(EngineKind::Threaded)),
        "event" => Ok(Some(EngineKind::EventLoop)),
        other => Err(format!("unknown engine '{other}' (auto|threaded|event)")),
    }
}

/// Reject `--procs` beyond what any engine backend can schedule, with a
/// typed [`SparsedistError`] instead of whatever the machine constructor
/// (or the OS thread spawner, on the threaded path) would do at the limit.
fn check_procs(procs: usize) -> Result<(), CmdError> {
    let max = EngineKind::EventLoop.max_procs();
    if procs > max {
        return Err(SparsedistError::MachineTooLarge { procs, max }.to_string());
    }
    Ok(())
}

/// Build the simulated machine, honouring the shared `--faults SPEC`,
/// `--retries N` and `--engine` flags.
fn build_machine(p: &Parsed, procs: usize, model: MachineModel) -> Result<Multicomputer, CmdError> {
    check_procs(procs)?;
    let mut machine = Multicomputer::virtual_machine(procs, model);
    if let Some(kind) = parse_engine(p.flag_or("engine", "auto"))? {
        machine = machine.with_engine(kind);
    }
    if let Some(spec) = p.flags.get("faults") {
        let plan = FaultPlan::parse(spec).map_err(|e| e.to_string())?;
        machine = machine.with_faults(plan);
    }
    if p.flags.contains_key("retries") {
        let retries = p.usize_or("retries", 6).map_err(|e| e.to_string())?;
        let retries = u32::try_from(retries).unwrap_or(u32::MAX);
        machine = machine.with_retry_policy(RetryPolicy::with_retries(retries));
    }
    Ok(machine)
}

fn load(path: &str) -> Result<Dense2D, CmdError> {
    let coo = matrixmarket::read_file(path).map_err(|e| format!("{path}: {e}"))?;
    coo.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(coo.to_dense())
}

/// Write `text` to `path`, funnelling I/O failures through
/// [`SparsedistError::Io`] instead of panicking.
fn write_text(path: &str, text: &str) -> Result<(), CmdError> {
    std::fs::write(path, text).map_err(|e| SparsedistError::io(path, e).to_string())
}

/// `sparsedist gen OUT.mtx …`
pub fn generate(p: &Parsed) -> Result<String, CmdError> {
    let out = p.positional(0, "output path").map_err(|e| e.to_string())?;
    let rows = p.usize_or("rows", 200).map_err(|e| e.to_string())?;
    let cols = p.usize_or("cols", rows).map_err(|e| e.to_string())?;
    let ratio = p.f64_or("ratio", 0.1).map_err(|e| e.to_string())?;
    let seed = p.usize_or("seed", 0).map_err(|e| e.to_string())? as u64;
    let a = match p.flag_or("pattern", "uniform") {
        "uniform" => SparseRandom::new(rows, cols)
            .sparse_ratio(ratio)
            .seed(seed)
            .generate(),
        "banded" => {
            let bw = p.usize_or("bandwidth", 2).map_err(|e| e.to_string())?;
            if rows != cols {
                return Err("banded pattern needs a square array".into());
            }
            patterns::banded(rows, bw)
        }
        "laplacian" => {
            let k = (rows as f64).sqrt().round() as usize;
            if k * k != rows {
                return Err(format!(
                    "laplacian needs --rows to be a perfect square, got {rows}"
                ));
            }
            patterns::five_point_laplacian(k)
        }
        "clustered" => patterns::block_clustered(rows.max(cols), 8, rows / 16 + 1, seed),
        other => return Err(format!("unknown pattern '{other}'")),
    };
    matrixmarket::write_file(out, &Coo::from_dense(&a)).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {out}: {}x{} with {} nonzeros (s = {:.4})\n",
        a.rows(),
        a.cols(),
        a.nnz(),
        a.sparse_ratio()
    ))
}

/// `sparsedist info FILE.mtx`
pub fn info(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "{path}:");
    let _ = writeln!(out, "  shape:        {}x{}", a.rows(), a.cols());
    let _ = writeln!(out, "  nonzeros:     {}", a.nnz());
    let _ = writeln!(out, "  sparse ratio: {:.4}", a.sparse_ratio());
    let row_nnz: Vec<usize> = (0..a.rows())
        .map(|r| a.row(r).iter().filter(|&&v| v != 0.0).count())
        .collect();
    let max_row = row_nnz.iter().copied().max().unwrap_or(0);
    let empty_rows = row_nnz.iter().filter(|&&n| n == 0).count();
    let _ = writeln!(out, "  max row nnz:  {max_row}");
    let _ = writeln!(out, "  empty rows:   {empty_rows}");
    let bandwidth = a
        .iter_nonzero()
        .map(|(r, c, _)| r.abs_diff(c))
        .max()
        .unwrap_or(0);
    let _ = writeln!(out, "  bandwidth:    {bandwidth}");
    // s' under a default 4-way row partition, the paper's imbalance metric.
    if a.rows() >= 4 {
        let part = RowBlock::new(a.rows(), a.cols(), 4);
        let prof = part.nnz_profile(&a);
        let _ = writeln!(out, "  s' (row, p=4): {:.4}", prof.s_max);
    }
    Ok(out)
}

/// `sparsedist distribute FILE.mtx …`
pub fn distribute(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let scheme = parse_scheme(p.flag_or("scheme", "ed"))?;
    let kind = parse_kind(p.flag_or("kind", "crs"))?;
    let model = parse_model(p.flag_or("model", "sp2"))?;
    let wire = parse_wire(p.flag_or("wire", "v1"))?;
    let codec = parse_codec(p.flag_or("codec", "packed"))?;
    let config = SchemeConfig {
        wire,
        codec,
        parallel: p.flag_or("parallel", "no") == "yes",
        overlap: p.flag_or("overlap", "no") == "yes",
        chunk_elems: p.usize_or("chunk-elems", 0).map_err(|e| e.to_string())?,
    };
    let part = build_partition(p, a.rows(), a.cols(), procs)?;
    let mut machine = build_machine(p, procs, model)?;
    let sink = p
        .flags
        .contains_key("trace")
        .then(MemorySink::new)
        .map(Arc::new);
    if let Some(s) = &sink {
        machine = machine.with_trace_sink(s.clone());
    }
    let run = run_scheme_with(scheme, &machine, &a, part.as_ref(), kind, config)
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} over {} processors ({} partition, {} compression):",
        scheme.label(),
        procs,
        part.name(),
        kind.label()
    );
    let _ = writeln!(out, "  T_Distribution: {}", run.t_distribution());
    let _ = writeln!(out, "  T_Compression:  {}", run.t_compression());
    let _ = writeln!(out, "  total:          {}", run.t_total());
    let src = &run.ledgers[run.source];
    let _ = writeln!(out, "  source phases:  {src}");
    let (msgs, elems, bytes) = run.ledgers.iter().fold((0u64, 0u64, 0u64), |acc, l| {
        let w = l.wire();
        (acc.0 + w.messages, acc.1 + w.elements, acc.2 + w.bytes)
    });
    let wire_label = match wire {
        WireFormat::V3 => format!("{wire}/{codec}"),
        _ => wire.to_string(),
    };
    let _ = writeln!(
        out,
        "  wire ({wire_label}):      {msgs} messages, {elems} elements, {bytes} bytes ({:.2} B/elem)",
        if elems == 0 {
            0.0
        } else {
            bytes as f64 / elems as f64
        }
    );
    if p.flag_or("streams", "no") == "yes" {
        let policy = WirePolicy::new(wire, codec, machine.model());
        let (grows, gcols) = (a.rows(), a.cols());
        let mut tally = StreamBytes::default();
        for pid in 0..procs {
            // Rebuild the exact per-part streams the compressed schemes
            // put on the wire (travelling indices in the global
            // co-dimension) and measure them columnar under the policy.
            let mut ops = sparsedist_core::opcount::OpCounter::new();
            let sb = match kind {
                CompressKind::Crs => {
                    let crs = Crs::from_part_global(&a, part.as_ref(), pid, &mut ops);
                    wire::measure_streams(gcols, crs.ro(), crs.co(), crs.vl(), &policy)
                }
                CompressKind::Ccs => {
                    let ccs = Ccs::from_part_global(&a, part.as_ref(), pid, &mut ops);
                    wire::measure_streams(grows, ccs.cp(), ccs.ri(), ccs.vl(), &policy)
                }
            };
            tally.add(sb);
        }
        let ratio = |raw: usize, enc: usize| {
            if raw == 0 {
                1.0
            } else {
                enc as f64 / raw as f64
            }
        };
        let _ = writeln!(out, "  streams ({} triples, {wire_label}):", kind.label());
        let _ = writeln!(
            out,
            "    indices: {} raw -> {} encoded bytes (x{:.2})",
            tally.index_raw,
            tally.index_encoded,
            ratio(tally.index_raw, tally.index_encoded)
        );
        let _ = writeln!(
            out,
            "    values:  {} raw -> {} encoded bytes (x{:.2})",
            tally.value_raw,
            tally.value_encoded,
            ratio(tally.value_raw, tally.value_encoded)
        );
        let (raw, enc) = (
            tally.index_raw + tally.value_raw,
            tally.index_encoded + tally.value_encoded,
        );
        let _ = writeln!(
            out,
            "    total:   {raw} raw -> {enc} encoded bytes, {:.2} B/elem over {} stream elements",
            ratio(raw, enc) * 8.0,
            raw / 8
        );
    }
    if p.flag_or("timeline", "no") == "yes" {
        let _ = writeln!(out, "  per-rank timeline (c=compress e=encode p=pack s=send u=unpack d=decode !=retry .=wait):");
        for line in render_timeline(&run.ledgers, 60).lines() {
            let _ = writeln!(out, "    {line}");
        }
        let faults = render_fault_summary(&run.ledgers);
        if !faults.is_empty() {
            let _ = writeln!(out, "  fault recovery:");
            for line in faults.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
    }
    for (pid, local) in run.locals.iter().enumerate() {
        let (lr, lc) = local.shape();
        let owner = run.owners[pid];
        if owner == pid {
            let _ = writeln!(out, "  P{pid}: {lr}x{lc} local, {} nonzeros", local.nnz());
        } else {
            let _ = writeln!(
                out,
                "  P{pid}: {lr}x{lc} local, {} nonzeros (re-homed to P{owner})",
                local.nnz()
            );
        }
    }
    if run.reassemble(part.as_ref()) == a {
        let _ = writeln!(
            out,
            "  verified: distributed state reassembles the input exactly"
        );
    } else {
        return Err("internal error: reassembly mismatch".into());
    }
    if let Some(s) = &sink {
        // lint: allow(E002) — the sink is constructed iff --trace was parsed above
        let trace_path = p.flags.get("trace").expect("sink exists only with --trace");
        let traces = s.take();
        write_text(trace_path, &chrome_trace_json(&traces))?;
        let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
        let _ = writeln!(
            out,
            "  trace:          {spans} spans over {} ranks written to {trace_path}",
            traces.len()
        );
    }
    Ok(out)
}

/// `sparsedist trace FILE.mtx …` — run one traced distribution and render
/// a per-rank phase waterfall plus a phase × rank summary table. Optional
/// `--out` exports Chrome-trace JSON (load in Perfetto / chrome://tracing)
/// and `--metrics` exports the per-rank counters and histograms as JSON.
pub fn trace_cmd(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let scheme = parse_scheme(p.flag_or("scheme", "ed"))?;
    let kind = parse_kind(p.flag_or("kind", "crs"))?;
    let model = parse_model(p.flag_or("model", "sp2"))?;
    let wire = parse_wire(p.flag_or("wire", "v1"))?;
    let width = p.usize_or("width", 60).map_err(|e| e.to_string())?;
    let config = SchemeConfig {
        wire,
        codec: parse_codec(p.flag_or("codec", "packed"))?,
        parallel: p.flag_or("parallel", "no") == "yes",
        overlap: p.flag_or("overlap", "no") == "yes",
        chunk_elems: p.usize_or("chunk-elems", 0).map_err(|e| e.to_string())?,
    };
    let part = build_partition(p, a.rows(), a.cols(), procs)?;
    let sink = Arc::new(MemorySink::new());
    let machine = build_machine(p, procs, model)?.with_trace_sink(sink.clone());
    run_scheme_with(scheme, &machine, &a, part.as_ref(), kind, config)
        .map_err(|e| e.to_string())?;
    let traces: Vec<RankTrace> = sink.take();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} over {procs} processors ({} partition, {} compression, {wire} wire):",
        scheme.label(),
        part.name(),
        kind.label()
    );
    let _ = writeln!(
        out,
        "  waterfall (c=compress e=encode p=pack s=send u=unpack d=decode k=pack !=retry .=wait):"
    );
    for line in render_waterfall(&traces, width).lines() {
        let _ = writeln!(out, "    {line}");
    }
    let _ = writeln!(out, "  phase summary:");
    for line in render_phase_table(&traces).lines() {
        let _ = writeln!(out, "    {line}");
    }
    if let Some(trace_path) = p.flags.get("out") {
        write_text(trace_path, &chrome_trace_json(&traces))?;
        let _ = writeln!(out, "  trace written to {trace_path}");
    }
    if let Some(metrics_path) = p.flags.get("metrics") {
        write_text(metrics_path, &metrics_json(&traces))?;
        let _ = writeln!(out, "  metrics written to {metrics_path}");
    }
    Ok(out)
}

/// `sparsedist chaos …` — sweep seeded fault plans over the schemes and
/// verify the golden-reconstruction-or-typed-error contract.
pub fn chaos_cmd(p: &Parsed) -> Result<String, CmdError> {
    let seeds = p.usize_or("seeds", 100).map_err(|e| e.to_string())?;
    let procs = p.usize_or("procs", 8).map_err(|e| e.to_string())?;
    let rows = p.usize_or("rows", 48).map_err(|e| e.to_string())?;
    let ratio = p.f64_or("ratio", 0.1).map_err(|e| e.to_string())?;
    let retries = p.usize_or("retries", 10).map_err(|e| e.to_string())?;
    let watchdog_ms = p
        .usize_or("watchdog-ms", 10_000)
        .map_err(|e| e.to_string())?;
    let schemes: Vec<SchemeKind> = match p.flag_or("scheme", "all") {
        "all" => SchemeKind::ALL.to_vec(),
        s => vec![parse_scheme(s)?],
    };
    let config = SchemeConfig {
        wire: parse_wire(p.flag_or("wire", "v1"))?,
        codec: parse_codec(p.flag_or("codec", "packed"))?,
        parallel: p.flag_or("parallel", "no") == "yes",
        overlap: p.flag_or("overlap", "no") == "yes",
        chunk_elems: p.usize_or("chunk-elems", 0).map_err(|e| e.to_string())?,
    };
    if procs < 2 {
        return Err("chaos needs --procs >= 2".into());
    }
    check_procs(procs)?;
    let engine = parse_engine(p.flag_or("engine", "auto"))?;
    let a = SparseRandom::new(rows, rows)
        .sparse_ratio(ratio)
        .seed(0xC0FFEE)
        .generate();
    let part = RowBlock::new(rows, rows, procs);

    let (mut clean, mut recovered, mut typed) = (0u64, 0u64, 0u64);
    let mut by_kind: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for seed in 0..seeds as u64 {
        let plan = FaultPlan::chaos(seed, procs);
        for &scheme in &schemes {
            let mut machine = Multicomputer::virtual_machine(procs, MachineModel::ibm_sp2())
                .with_faults(plan.clone())
                .with_retry_policy(RetryPolicy::with_retries(
                    u32::try_from(retries).unwrap_or(u32::MAX),
                ))
                .with_watchdog(std::time::Duration::from_millis(watchdog_ms as u64));
            if let Some(kind) = engine {
                machine = machine.with_engine(kind);
            }
            match run_scheme_with(scheme, &machine, &a, &part, CompressKind::Crs, config) {
                Ok(run) => {
                    if run.reassemble(&part) != a {
                        return Err(format!(
                            "seed {seed} {}: run succeeded but reconstruction differs — data loss",
                            scheme.label()
                        ));
                    }
                    let rework: u64 = run.ledgers.iter().map(|l| l.faults().retries).sum();
                    let rehomed = run.owners.iter().enumerate().any(|(pid, &o)| pid != o);
                    if rework > 0 || rehomed {
                        recovered += 1;
                    } else {
                        clean += 1;
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    if msg.contains("watchdog") {
                        return Err(format!(
                            "seed {seed} {}: protocol stall — {msg}",
                            scheme.label()
                        ));
                    }
                    typed += 1;
                    let kind = match &e {
                        SparsedistError::Comm(_) => "communication",
                        SparsedistError::SourceDead { .. } => "source dead",
                        SparsedistError::NoSurvivors { .. } => "no survivors",
                        SparsedistError::Compress(_) | SparsedistError::Unpack(_) => {
                            "stream validation"
                        }
                        _ => "other",
                    };
                    *by_kind.entry(kind).or_default() += 1;
                }
            }
        }
    }

    let total = clean + recovered + typed;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: {seeds} seeded plans x {} scheme(s) over {procs} processors ({rows}x{rows}, s={ratio}):",
        schemes.len()
    );
    let _ = writeln!(out, "  {total} runs, 0 panics, 0 stalls");
    let _ = writeln!(out, "  clean:             {clean}");
    let _ = writeln!(
        out,
        "  recovered:         {recovered} (retries or re-homed parts)"
    );
    let _ = writeln!(out, "  typed errors:      {typed}");
    for (kind, n) in &by_kind {
        let _ = writeln!(out, "    {kind}: {n}");
    }
    let _ = writeln!(
        out,
        "  every surviving run reconstructed the golden array exactly"
    );
    Ok(out)
}

/// `sparsedist simcheck …` — drive one scheme configuration through
/// *every* message-delivery interleaving of a small event-loop machine
/// and verify that ledgers, locals and owners are bit-identical across
/// all schedules and that none deadlocks. The dynamic twin of the lint
/// C rules (DESIGN.md §13).
pub fn simcheck_cmd(p: &Parsed) -> Result<String, CmdError> {
    let procs = p.usize_or("procs", 3).map_err(|e| e.to_string())?;
    if !(2..=4).contains(&procs) {
        return Err(format!(
            "simcheck enumerates every delivery interleaving — the tree is \
             exponential in machine size; --procs must be 2..=4, got {procs}"
        ));
    }
    let rows = p.usize_or("rows", 6).map_err(|e| e.to_string())?;
    let ratio = p.f64_or("ratio", 0.2).map_err(|e| e.to_string())?;
    let seeds = p.usize_or("seeds", 2).map_err(|e| e.to_string())?;
    let max_schedules = p
        .usize_or("max-schedules", 60_000)
        .map_err(|e| e.to_string())?;
    let scheme = parse_scheme(p.flag_or("scheme", "ed"))?;
    let which = p.flag_or("config", "all");
    if !matches!(which, "pipeline" | "routed" | "chaos" | "all") {
        return Err(format!(
            "unknown config '{which}' (pipeline|routed|chaos|all)"
        ));
    }
    let a = SparseRandom::new(rows, rows)
        .sparse_ratio(ratio)
        .seed(0xC0FFEE)
        .generate();
    let part = RowBlock::new(rows, rows, procs);

    // One run under the current thread-local schedule, digested into the
    // string that must be schedule-invariant.
    let digest = |plan: Option<&FaultPlan>, config: SchemeConfig| {
        let mut machine = Multicomputer::virtual_machine(procs, MachineModel::ibm_sp2())
            .with_engine(EngineKind::EventLoop);
        if let Some(plan) = plan {
            machine = machine
                .with_faults(plan.clone())
                .with_retry_policy(RetryPolicy::with_retries(10));
        }
        match run_scheme_with(scheme, &machine, &a, &part, CompressKind::Crs, config) {
            Ok(run) => format!(
                "ok reassembled={} owners={:?} ledgers={:?} locals={:?}",
                run.reassemble(&part) == a,
                run.owners,
                run.ledgers,
                run.locals
            ),
            Err(e) => format!("err {e}"),
        }
    };

    let mut jobs: Vec<(String, Option<FaultPlan>, SchemeConfig)> = Vec::new();
    let overlap = SchemeConfig {
        overlap: true,
        ..SchemeConfig::default()
    };
    if matches!(which, "pipeline" | "all") {
        let chunked = SchemeConfig {
            chunk_elems: 6,
            ..overlap
        };
        jobs.push(("pipeline".into(), None, chunked));
    }
    if matches!(which, "routed" | "all") {
        // A mid-stream death of the last rank: its part re-homes to a
        // survivor while frames are in flight — the hardest protocol.
        let plan = FaultPlan::new(1).with_death_at(procs - 1, 200.0);
        jobs.push(("routed-death".into(), Some(plan), overlap));
    }
    if matches!(which, "chaos" | "all") {
        for seed in 0..seeds as u64 {
            let plan = FaultPlan::chaos(seed, procs);
            jobs.push((
                format!("chaos seed {seed}"),
                Some(plan),
                SchemeConfig::default(),
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "simcheck: {} over {procs} processors ({rows}x{rows}, s={ratio}), every delivery schedule:",
        scheme.label()
    );
    let mut total = 0usize;
    for (label, plan, config) in &jobs {
        let report =
            sparsedist_multicomputer::explore(|| digest(plan.as_ref(), *config), max_schedules);
        if report.truncated {
            return Err(format!(
                "simcheck {label}: interleaving tree not exhausted within \
                 --max-schedules {max_schedules} ({} branch points deep); \
                 raise the cap or shrink --rows",
                report.max_branch_points
            ));
        }
        if let Some(d) = &report.divergence {
            return Err(format!(
                "simcheck {label}: outcome depends on delivery order!\n  \
                 schedule 0 (FIFO): {}\n  schedule {} (choices {:?}): {}",
                report.baseline, d.schedule, d.choices, d.outcome
            ));
        }
        if report.baseline.contains("watchdog") {
            return Err(format!(
                "simcheck {label}: every schedule stalls — {}",
                report.baseline
            ));
        }
        total += report.schedules;
        let _ = writeln!(
            out,
            "  {label}: {} schedules ({} branch points) — bit-identical, deadlock-free [{}]",
            report.schedules,
            report.max_branch_points,
            report.baseline.split(" ledgers=").next().unwrap_or("ok")
        );
    }
    let _ = writeln!(
        out,
        "  {total} schedules explored exhaustively; ledgers, locals and owners \
         are schedule-independent"
    );
    Ok(out)
}

/// `sparsedist advise FILE.mtx …`
pub fn advise(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let model = parse_model(p.flag_or("model", "sp2"))?;
    if a.rows() != a.cols() {
        return Err("advise uses the paper's square-array cost model".into());
    }
    let part = RowBlock::new(a.rows(), a.cols(), procs);
    let prof = part.nnz_profile(&a);
    let inp = CostInput {
        n: a.rows(),
        p: procs,
        s: a.sparse_ratio(),
        s_max: prof.s_max,
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cost model at n={}, p={procs}, s={:.4}, s'={:.4}, T_Data/T_Op={:.2}:",
        a.rows(),
        inp.s,
        inp.s_max,
        model.data_op_ratio()
    );
    let mut best: Option<(SchemeKind, f64)> = None;
    for scheme in SchemeKind::ALL {
        let c = predict(
            scheme,
            PartitionMethod::Row,
            CompressKind::Crs,
            &inp,
            &model,
        );
        let total = c.t_total().as_millis();
        let _ = writeln!(
            out,
            "  {:<4} dist {:>10.3}ms  comp {:>10.3}ms  total {:>10.3}ms",
            scheme.label(),
            c.t_distribution.as_millis(),
            c.t_compression.as_millis(),
            total
        );
        if best.is_none_or(|(_, t)| total < t) {
            best = Some((scheme, total));
        }
    }
    // lint: allow(E002) — the loop above evaluates all three schemes, so best is Some
    let (winner, _) = best.expect("three schemes evaluated");
    let _ = writeln!(out, "  → recommended scheme: {}", winner.label());
    Ok(out)
}

/// `sparsedist spmv FILE.mtx …`
pub fn spmv(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let scheme = parse_scheme(p.flag_or("scheme", "ed"))?;
    let part = build_partition(p, a.rows(), a.cols(), procs)?;
    let machine = build_machine(p, procs, MachineModel::ibm_sp2())?;
    let run = run_scheme(scheme, &machine, &a, part.as_ref(), CompressKind::Crs)
        .map_err(|e| e.to_string())?;
    let x = vec![1.0; a.cols()];
    let y = distributed_spmv(&machine, &run, part.as_ref(), &x).map_err(|e| e.to_string())?;
    let checksum: f64 = y.iter().sum();
    let compute_max = run
        .ledgers
        .iter()
        .map(|l| l.get(Phase::Compute).as_micros())
        .fold(0.0f64, f64::max);
    Ok(format!(
        "y = A·1 over {} processors: checksum {:.6}, ||y||_inf {:.6}, max compute {:.3}ms\n",
        procs,
        checksum,
        y.iter().fold(0.0f64, |m, v| m.max(v.abs())),
        compute_max / 1000.0
    ))
}

/// `sparsedist checkpoint FILE.mtx DIR …` — distribute and save the
/// distributed state.
pub fn checkpoint_cmd(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let dir = p
        .positional(1, "checkpoint directory")
        .map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let scheme = parse_scheme(p.flag_or("scheme", "ed"))?;
    let part = build_partition(p, a.rows(), a.cols(), procs)?;
    let machine = build_machine(p, procs, MachineModel::ibm_sp2())?;
    let dist = DistributedSparseArray::distribute(&machine, &a, part, scheme, CompressKind::Crs)
        .map_err(|e| e.to_string())?;
    dist.checkpoint(dir).map_err(|e| e.to_string())?;
    Ok(format!(
        "checkpointed {}x{} ({} nonzeros) over {procs} processors into {dir}\n",
        a.rows(),
        a.cols(),
        dist.nnz()
    ))
}

/// `sparsedist restore DIR OUT.mtx …` — resume a checkpoint, gather and
/// write the array back out as MatrixMarket.
pub fn restore_cmd(p: &Parsed) -> Result<String, CmdError> {
    let dir = p
        .positional(0, "checkpoint directory")
        .map_err(|e| e.to_string())?;
    let out = p
        .positional(1, "output .mtx path")
        .map_err(|e| e.to_string())?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let rows = p.usize_or("rows", 0).map_err(|e| e.to_string())?;
    let cols = p.usize_or("cols", rows).map_err(|e| e.to_string())?;
    if rows == 0 {
        return Err(
            "restore needs --rows (and --cols for non-square) of the original array".into(),
        );
    }
    let part = build_partition(p, rows, cols, procs)?;
    let machine = Multicomputer::virtual_machine(procs, MachineModel::ibm_sp2());
    let dist = DistributedSparseArray::resume(&machine, part, CompressKind::Crs, dir)
        .map_err(|e| e.to_string())?;
    let dense = dist
        .gather_dense(GatherStrategy::Encoded)
        .map_err(|e| e.to_string())?;
    matrixmarket::write_file(out, &Coo::from_dense(&dense)).map_err(|e| e.to_string())?;
    Ok(format!(
        "restored {rows}x{cols} ({} nonzeros) from {dir} and wrote {out}\n",
        dist.nnz()
    ))
}

/// `sparsedist pipeline FILE.mtx …` — full lifecycle demo: distribute,
/// SpMV, repartition to a mesh, gather, verify.
pub fn pipeline_cmd(p: &Parsed) -> Result<String, CmdError> {
    let path = p.positional(0, "input file").map_err(|e| e.to_string())?;
    let a = load(path)?;
    let procs = p.usize_or("procs", 4).map_err(|e| e.to_string())?;
    let grid = parse_grid(p.flag_or("grid", "2x2"))?;
    if grid.0 * grid.1 != procs {
        return Err(format!(
            "grid {}x{} does not match --procs {procs}",
            grid.0, grid.1
        ));
    }
    let machine = build_machine(p, procs, MachineModel::ibm_sp2())?;
    let mut out = String::new();

    let mut dist = DistributedSparseArray::distribute(
        &machine,
        &a,
        Box::new(RowBlock::new(a.rows(), a.cols(), procs)),
        SchemeKind::Ed,
        CompressKind::Crs,
    )
    .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "1. ED distribution (row):   busy max {}",
        dist.last_busy_max()
    );
    let y = dist.spmv(&vec![1.0; a.cols()]).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "2. SpMV checksum:           {:.6}",
        y.iter().sum::<f64>()
    );
    dist.repartition(
        Box::new(Mesh2D::new(a.rows(), a.cols(), grid.0, grid.1)),
        RedistStrategy::Direct,
    )
    .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "3. repartition to mesh:     busy max {}",
        dist.last_busy_max()
    );
    let back = dist
        .gather_dense(GatherStrategy::Encoded)
        .map_err(|e| e.to_string())?;
    if back != a {
        return Err("internal error: gathered array differs from input".into());
    }
    let _ = writeln!(out, "4. encoded gather verified: array round-trips exactly");
    Ok(out)
}

#[cfg(test)]
mod tests {

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("sparsedist_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_info_round_trip() {
        let path = tmp("gen1.mtx");
        let g = crate::run(&argv(&format!("gen {path} --rows 64 --ratio 0.1 --seed 3"))).unwrap();
        assert!(g.contains("64x64"), "{g}");
        assert!(g.contains("410 nonzeros"), "{g}"); // round(0.1·4096)

        let i = crate::run(&argv(&format!("info {path}"))).unwrap();
        assert!(i.contains("shape:        64x64"), "{i}");
        assert!(i.contains("nonzeros:     410"), "{i}");
    }

    #[test]
    fn simcheck_explores_and_certifies_the_default_configs() {
        let out = crate::run(&argv("simcheck --procs 3 --seeds 1")).unwrap();
        assert!(out.contains("pipeline:"), "{out}");
        assert!(out.contains("routed-death:"), "{out}");
        assert!(out.contains("chaos seed 0:"), "{out}");
        assert!(out.contains("bit-identical, deadlock-free"), "{out}");
        assert!(out.contains("schedules explored exhaustively"), "{out}");
    }

    #[test]
    fn simcheck_rejects_oversized_machines_and_bad_configs() {
        let err = crate::run(&argv("simcheck --procs 5")).unwrap_err();
        assert!(err.contains("--procs must be 2..=4"), "{err}");
        let err = crate::run(&argv("simcheck --config nope")).unwrap_err();
        assert!(err.contains("unknown config"), "{err}");
    }

    #[test]
    fn simcheck_reports_truncation_as_an_error() {
        let err = crate::run(&argv(
            "simcheck --procs 3 --config routed --max-schedules 5",
        ))
        .unwrap_err();
        assert!(err.contains("not exhausted"), "{err}");
    }

    #[test]
    fn distribute_reports_and_verifies() {
        let path = tmp("gen2.mtx");
        crate::run(&argv(&format!("gen {path} --rows 40 --ratio 0.2"))).unwrap();
        let d = crate::run(&argv(&format!(
            "distribute {path} --scheme cfs --partition mesh --grid 2x2 --procs 4 --kind ccs"
        )))
        .unwrap();
        assert!(d.contains("CFS over 4 processors"), "{d}");
        assert!(d.contains("verified"), "{d}");
    }

    #[test]
    fn distribute_wire_v2_saves_bytes_at_equal_virtual_time() {
        let path = tmp("gen_wire.mtx");
        crate::run(&argv(&format!(
            "gen {path} --rows 40 --ratio 0.2 --seed 11"
        )))
        .unwrap();
        let v1 = crate::run(&argv(&format!("distribute {path} --scheme ed --procs 4"))).unwrap();
        let v2 = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --wire v2 --parallel yes"
        )))
        .unwrap();
        assert!(v1.contains("wire (v1)"), "{v1}");
        assert!(v2.contains("wire (v2)"), "{v2}");
        assert!(v2.contains("verified"), "{v2}");
        // The cost model charges logical elements, so the virtual times match…
        let line = |s: &str, key: &str| {
            s.lines()
                .find(|l| l.contains(key))
                .map(str::to_owned)
                .unwrap()
        };
        assert_eq!(line(&v1, "T_Distribution"), line(&v2, "T_Distribution"));
        // …while the compact format moves fewer bytes for the same elements.
        let bytes = |s: &str| {
            let l = line(s, "wire (");
            l.split_whitespace()
                .zip(l.split_whitespace().skip(1))
                .find(|(_, unit)| *unit == "bytes")
                .map(|(n, _)| n.parse::<u64>().unwrap())
                .unwrap()
        };
        assert!(bytes(&v2) < bytes(&v1), "v1: {v1}\nv2: {v2}");

        assert!(crate::run(&argv(&format!("distribute {path} --wire v9"))).is_err());
    }

    #[test]
    fn distribute_wire_v3_beats_v2_bytes_at_equal_virtual_time() {
        let path = tmp("gen_wire_v3.mtx");
        crate::run(&argv(&format!(
            "gen {path} --rows 40 --ratio 0.2 --seed 11"
        )))
        .unwrap();
        let line = |s: &str, key: &str| {
            s.lines()
                .find(|l| l.contains(key))
                .map(str::to_owned)
                .unwrap()
        };
        let bytes = |s: &str| {
            let l = line(s, "wire (");
            l.split_whitespace()
                .zip(l.split_whitespace().skip(1))
                .find(|(_, unit)| *unit == "bytes")
                .map(|(n, _)| n.parse::<u64>().unwrap())
                .unwrap()
        };
        for scheme in ["cfs", "ed"] {
            let v2 = crate::run(&argv(&format!(
                "distribute {path} --scheme {scheme} --procs 4 --wire v2"
            )))
            .unwrap();
            let v3 = crate::run(&argv(&format!(
                "distribute {path} --scheme {scheme} --procs 4 --wire v3"
            )))
            .unwrap();
            assert!(v3.contains("wire (v3/packed)"), "{v3}");
            assert!(v3.contains("verified"), "{v3}");
            // The codec moves bytes, never ops: the virtual clock cannot
            // tell the formats apart while the wire shrinks further.
            assert_eq!(
                line(&v2, "T_Distribution"),
                line(&v3, "T_Distribution"),
                "{scheme}"
            );
            assert!(
                bytes(&v3) < bytes(&v2),
                "{scheme}: v3 {} !< v2 {}",
                bytes(&v3),
                bytes(&v2)
            );
        }
    }

    #[test]
    fn distribute_codec_flag_and_streams_report() {
        let path = tmp("gen_streams.mtx");
        crate::run(&argv(&format!("gen {path} --rows 40 --ratio 0.1 --seed 3"))).unwrap();
        let d = crate::run(&argv(&format!(
            "distribute {path} --scheme cfs --procs 4 --wire v3 --codec auto --streams yes"
        )))
        .unwrap();
        assert!(d.contains("wire (v3/auto)"), "{d}");
        assert!(d.contains("streams (crs triples"), "{d}");
        assert!(d.contains("indices:"), "{d}");
        assert!(d.contains("values:"), "{d}");
        assert!(d.contains("B/elem"), "{d}");
        assert!(d.contains("verified"), "{d}");
        // The report works under every format (raw == encoded for v1).
        let v1 = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --streams yes"
        )))
        .unwrap();
        assert!(v1.contains("streams (crs triples"), "{v1}");
        // A bad codec name is a typed CLI error.
        let err = crate::run(&argv(&format!("distribute {path} --codec zstd"))).unwrap_err();
        assert!(err.contains("unknown codec"), "{err}");
    }

    #[test]
    fn distribute_overlap_and_chunking_flags() {
        let path = tmp("gen_pipe.mtx");
        crate::run(&argv(&format!("gen {path} --rows 40 --ratio 0.2 --seed 9"))).unwrap();
        let ms = |s: &str, key: &str| -> f64 {
            s.lines()
                .find(|l| l.contains(key))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.strip_suffix("ms"))
                .unwrap()
                .parse()
                .unwrap()
        };
        let wire_stat = |s: &str, unit: &str| -> u64 {
            let l = s.lines().find(|l| l.contains("wire (")).unwrap();
            l.split_whitespace()
                .zip(l.split_whitespace().skip(1))
                .find(|(_, u)| u.trim_end_matches(',') == unit)
                .map(|(n, _)| n.parse().unwrap())
                .unwrap()
        };

        let staged =
            crate::run(&argv(&format!("distribute {path} --scheme ed --procs 4"))).unwrap();
        let over = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --overlap yes"
        )))
        .unwrap();
        // Overlap hides wire time behind encode work: same bytes, same
        // verified state, strictly smaller T_Distribution.
        assert!(over.contains("verified"), "{over}");
        assert_eq!(wire_stat(&staged, "bytes"), wire_stat(&over, "bytes"));
        assert!(
            ms(&over, "T_Distribution") < ms(&staged, "T_Distribution"),
            "overlap did not shrink T_Distribution:\n{staged}\n{over}"
        );

        // Chunked streaming splits buffers into framed chunks: more
        // messages on the wire, identical verified state.
        let chunked = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --chunk-elems 16"
        )))
        .unwrap();
        assert!(chunked.contains("verified"), "{chunked}");
        assert!(
            wire_stat(&chunked, "messages") > wire_stat(&staged, "messages"),
            "staged: {staged}\nchunked: {chunked}"
        );

        assert!(crate::run(&argv(&format!("distribute {path} --chunk-elems nope"))).is_err());
    }

    #[test]
    fn oversized_procs_is_a_typed_error() {
        let path = tmp("gen_procs_max.mtx");
        crate::run(&argv(&format!("gen {path} --rows 16 --ratio 0.2"))).unwrap();
        // Above the event loop's ceiling there is no backend left; the CLI
        // must reject up front with the typed message, not spawn anything.
        let err = crate::run(&argv(&format!("distribute {path} --procs 200000"))).unwrap_err();
        assert!(err.contains("--procs 200000"), "{err}");
        assert!(err.contains("131072"), "{err}");
        let err = crate::run(&argv("chaos --seeds 1 --procs 200000")).unwrap_err();
        assert!(err.contains("--procs 200000"), "{err}");
        assert!(err.contains("largest supported machine"), "{err}");
    }

    #[test]
    fn engine_flag_forces_backends_with_identical_output() {
        let path = tmp("gen_engine.mtx");
        crate::run(&argv(&format!("gen {path} --rows 40 --ratio 0.2 --seed 5"))).unwrap();
        let threaded = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --engine threaded"
        )))
        .unwrap();
        let event = crate::run(&argv(&format!(
            "distribute {path} --scheme ed --procs 4 --engine event"
        )))
        .unwrap();
        assert!(event.contains("verified"), "{event}");
        // Ledgers are bit-identical across backends, so the whole report —
        // timings, wire stats, per-rank lines — must match byte for byte.
        assert_eq!(threaded, event);
        assert!(crate::run(&argv(&format!("distribute {path} --engine warp"))).is_err());
    }

    #[test]
    fn advise_recommends_a_scheme() {
        let path = tmp("gen3.mtx");
        crate::run(&argv(&format!("gen {path} --rows 80 --ratio 0.05"))).unwrap();
        let a = crate::run(&argv(&format!("advise {path} --procs 4 --model network"))).unwrap();
        assert!(a.contains("recommended scheme: ED"), "{a}");
        let b = crate::run(&argv(&format!("advise {path} --procs 4 --model compute"))).unwrap();
        assert!(b.contains("recommended scheme: SFC"), "{b}");
    }

    #[test]
    fn spmv_checksum_matches_dense() {
        let path = tmp("gen4.mtx");
        crate::run(&argv(&format!("gen {path} --rows 36 --pattern laplacian"))).unwrap();
        let s = crate::run(&argv(&format!("spmv {path} --procs 4"))).unwrap();
        // Laplacian row sums: interior 0, boundary positive; checksum is
        // the total of all row sums = sum of boundary contributions.
        assert!(s.contains("checksum"), "{s}");
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(crate::run(&argv("nonsense")).is_err());
        assert!(crate::run(&argv("info /no/such/file.mtx")).is_err());
        let path = tmp("gen5.mtx");
        crate::run(&argv(&format!("gen {path} --rows 16"))).unwrap();
        assert!(crate::run(&argv(&format!("distribute {path} --scheme bogus"))).is_err());
        assert!(crate::run(&argv(&format!(
            "distribute {path} --partition mesh --grid 3x3 --procs 4"
        )))
        .is_err());
        assert!(crate::run(&argv(&format!("gen {path} --rows 10 --pattern laplacian"))).is_err());
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mtx = tmp("ckpt_src.mtx");
        let dir = tmp("ckpt_dir");
        let out = tmp("ckpt_out.mtx");
        let _ = std::fs::remove_dir_all(&dir);
        crate::run(&argv(&format!("gen {mtx} --rows 48 --ratio 0.1 --seed 5"))).unwrap();
        let c = crate::run(&argv(&format!("checkpoint {mtx} {dir} --procs 4"))).unwrap();
        assert!(c.contains("checkpointed 48x48"), "{c}");
        let r = crate::run(&argv(&format!("restore {dir} {out} --procs 4 --rows 48"))).unwrap();
        assert!(r.contains("restored 48x48"), "{r}");
        // The round-tripped file holds the same array.
        let orig = sparsedist_gen::matrixmarket::read_file(&mtx)
            .unwrap()
            .to_dense();
        let back = sparsedist_gen::matrixmarket::read_file(&out)
            .unwrap()
            .to_dense();
        assert_eq!(orig, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipeline_round_trips() {
        let mtx = tmp("pipe.mtx");
        crate::run(&argv(&format!("gen {mtx} --rows 32 --ratio 0.15"))).unwrap();
        let p = crate::run(&argv(&format!("pipeline {mtx} --procs 4 --grid 2x2"))).unwrap();
        assert!(p.contains("round-trips exactly"), "{p}");
    }

    #[test]
    fn distribute_recovers_from_injected_drops() {
        let path = tmp("gen_faults.mtx");
        crate::run(&argv(&format!("gen {path} --rows 32 --ratio 0.2 --seed 9"))).unwrap();
        let d = crate::run(&argv(&format!(
            "distribute {path} --procs 4 --faults seed=7,drop=0.2 --retries 6 --timeline yes"
        )))
        .unwrap();
        // Retries recovered every frame: the state still verifies, and the
        // timeline's fault section reports the recovery cost.
        assert!(d.contains("verified"), "{d}");
        assert!(d.contains("fault recovery"), "{d}");
    }

    #[test]
    fn distribute_survives_a_dead_rank() {
        let path = tmp("gen_dead.mtx");
        crate::run(&argv(&format!("gen {path} --rows 32 --ratio 0.2 --seed 9"))).unwrap();
        let d = crate::run(&argv(&format!(
            "distribute {path} --procs 4 --faults dead=2"
        )))
        .unwrap();
        assert!(d.contains("re-homed"), "{d}");
        assert!(d.contains("verified"), "{d}");
    }

    #[test]
    fn bad_fault_spec_is_reported() {
        let path = tmp("gen_badspec.mtx");
        crate::run(&argv(&format!("gen {path} --rows 16"))).unwrap();
        let err = crate::run(&argv(&format!(
            "distribute {path} --procs 4 --faults drop=1.5"
        )))
        .unwrap_err();
        assert!(err.contains("probability"), "{err}");
    }

    #[test]
    fn chaos_small_sweep_reports_every_outcome() {
        let out = crate::run(&argv(
            "chaos --seeds 25 --procs 4 --rows 24 --ratio 0.15 --scheme ed",
        ))
        .unwrap();
        assert!(out.contains("25 seeded plans"), "{out}");
        assert!(out.contains("0 panics, 0 stalls"), "{out}");
        assert!(out.contains("clean:"), "{out}");
        assert!(out.contains("golden array exactly"), "{out}");
    }

    #[test]
    fn chaos_rejects_single_rank() {
        let err = crate::run(&argv("chaos --seeds 1 --procs 1")).unwrap_err();
        assert!(err.contains("--procs"), "{err}");
    }

    #[test]
    fn restore_requires_dimensions() {
        let err = crate::run(&argv("restore /tmp/nowhere out.mtx --procs 4")).unwrap_err();
        assert!(err.contains("--rows"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let h = crate::run(&argv("help")).unwrap();
        assert!(h.contains("USAGE"));
    }

    #[test]
    fn distribute_trace_flag_writes_chrome_json() {
        let mtx = tmp("gen_trace.mtx");
        let trace = tmp("gen_trace.json");
        crate::run(&argv(&format!("gen {mtx} --rows 32 --ratio 0.2 --seed 4"))).unwrap();
        let d = crate::run(&argv(&format!(
            "distribute {mtx} --scheme ed --procs 4 --trace {trace}"
        )))
        .unwrap();
        assert!(d.contains("verified"), "{d}");
        assert!(d.contains("spans over 4 ranks"), "{d}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"cat\":\"ED\""), "{json}");
    }

    #[test]
    fn trace_subcommand_renders_waterfall_and_table() {
        let mtx = tmp("trace_cmd.mtx");
        let trace = tmp("trace_cmd.json");
        let metrics = tmp("trace_cmd_metrics.json");
        crate::run(&argv(&format!("gen {mtx} --rows 32 --ratio 0.2 --seed 4"))).unwrap();
        let t = crate::run(&argv(&format!(
            "trace {mtx} --scheme cfs --procs 4 --out {trace} --metrics {metrics}"
        )))
        .unwrap();
        assert!(t.contains("waterfall"), "{t}");
        assert!(t.contains("phase summary"), "{t}");
        assert!(t.contains("P0") && t.contains("P3"), "{t}");
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("\"cat\":\"CFS\""));
        assert!(std::fs::read_to_string(&metrics)
            .unwrap()
            .contains("\"ops.total\""));
    }

    #[test]
    fn trace_io_failure_is_a_typed_error_not_a_panic() {
        let mtx = tmp("trace_io.mtx");
        crate::run(&argv(&format!("gen {mtx} --rows 16"))).unwrap();
        let err = crate::run(&argv(&format!(
            "trace {mtx} --procs 4 --out /no/such/dir/trace.json"
        )))
        .unwrap_err();
        assert!(err.contains("/no/such/dir/trace.json"), "{err}");
    }
}
