#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Implementation of the `sparsedist` command-line tool.
//!
//! The binary front end (`src/main.rs`) is a thin shim over this library
//! so the argument parsing and every command can be unit-tested.

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};

/// Top-level dispatch: parse and run, returning the text to print.
pub fn run(argv: &[String]) -> Result<String, String> {
    let parsed = args::Parsed::parse(argv).map_err(|e| e.to_string())?;
    match parsed.command.as_str() {
        "gen" => commands::generate(&parsed).map_err(|e| e.to_string()),
        "info" => commands::info(&parsed).map_err(|e| e.to_string()),
        "distribute" => commands::distribute(&parsed).map_err(|e| e.to_string()),
        "trace" => commands::trace_cmd(&parsed).map_err(|e| e.to_string()),
        "chaos" => commands::chaos_cmd(&parsed).map_err(|e| e.to_string()),
        "simcheck" => commands::simcheck_cmd(&parsed).map_err(|e| e.to_string()),
        "advise" => commands::advise(&parsed).map_err(|e| e.to_string()),
        "spmv" => commands::spmv(&parsed).map_err(|e| e.to_string()),
        "checkpoint" => commands::checkpoint_cmd(&parsed).map_err(|e| e.to_string()),
        "restore" => commands::restore_cmd(&parsed).map_err(|e| e.to_string()),
        "pipeline" => commands::pipeline_cmd(&parsed).map_err(|e| e.to_string()),
        "help" | "" => Ok(commands::USAGE.to_string()),
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    }
}
