//! `sparsedist` — the command-line front end. All logic lives in the
//! library so it can be tested; this shim only handles process I/O.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match sparsedist_cli::run(&argv) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
