//! A crate root that forgot to pin its unsafe-free status.

fn entry() {}
