//! Known-bad executor fixture: an event-loop scheduler that breaks the
//! determinism family the real `exec.rs` honours — unordered mailboxes,
//! wall-clock deadlines, entropy in the ready-queue pick.

use std::collections::HashMap;
use std::time::Instant;

struct SloppyFabric {
    mailboxes: HashMap<usize, Vec<u8>>,
    started: Instant,
}

fn pick_next_task(ready: &mut Vec<usize>) -> usize {
    let mut rng = rand::thread_rng();
    ready.swap_remove(rng.gen::<usize>() % ready.len())
}

fn stalled_after(deadline: std::time::Instant) -> bool {
    deadline.elapsed().as_millis() > 10
}
