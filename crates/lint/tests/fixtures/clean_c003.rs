//! C003 clean fixture: part-id headers precede every routed send, and
//! the context gate leaves non-protocol code alone.

impl<'a, S> Router<'a, S> {
    fn ship(&mut self, env: &mut Env, pid: u64, buf: PackBuffer) -> Result<(), CommError> {
        let mut header = env.arena().checkout(8);
        header.push_u64(pid);
        if self.nonblocking {
            env.isend(self.dst, header)?;
        } else {
            env.send(self.dst, header)?;
        }
        send_part(env, self.dst, buf)?;
        env.wait_all()?;
        Ok(())
    }
}

fn plain_send(env: &mut Env, buf: PackBuffer) -> Result<(), CommError> {
    send_part(env, 0, buf)
}
