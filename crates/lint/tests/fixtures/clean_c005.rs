//! C005 clean fixture: schemes talk to Env only.

fn relay(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    env.send(dst, buf)
}
