//! C001 clean fixture: every await is a receive-family call.

async fn task(ctx: &PlainCtx, env: &mut Env) -> Result<(), CommError> {
    let m = env.recv_async(0).await?;
    let part = recv_part(env, 0).await?;
    let parts = receive_parts(ctx, env).await?;
    let routed = routed_receive(ctx, env).await?;
    drop((m, part, parts, routed));
    Ok(())
}
