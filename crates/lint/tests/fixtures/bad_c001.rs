//! C001 fixture: awaits that are not receive-family calls.

async fn task(env: &mut Env) -> Result<u64, CommError> {
    let m = env.recv_async(0).await?;
    let fut = make_future();
    let x = fut.await;
    let y = compute_async(env).await;
    Ok(m.payload.cursor().read_u64() + x + y)
}
