//! Known-bad determinism fixture: each D-rule fires at a fixed line.

use std::collections::HashMap;
use std::time::Instant;

fn wall_clock() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn unordered() -> HashMap<u32, u32> {
    HashMap::new()
}
