//! Known-bad width-discipline fixture: casts outside the wire family.

fn narrow(big: u64) -> u32 {
    big as u32
}

fn truncate_byte(big: u64) -> u8 {
    (big & 0xffff) as u16 as u8
}

fn index(big: u64) -> usize {
    big as usize
}
