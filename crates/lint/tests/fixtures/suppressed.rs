//! Suppression semantics fixture: one justified, one reasonless, one
//! naming a rule that does not exist.

fn justified(big: u64) -> usize {
    // lint: allow(W002) — the value was masked to 16 bits above
    big as usize
}

fn reasonless(big: u64) -> usize {
    // lint: allow(W002)
    big as usize
}

fn unknown_rule() {
    // lint: allow(Q999) — no such rule
    let _ = 1;
}
