//! C004 clean fixture: Retry charges carry recovery provenance.

fn replay_part(env: &mut Env, elems: u64) -> Result<(), CommError> {
    env.phase(Phase::Retry, |env| env.charge_ops(elems))
}

fn deliver(env: &mut Env, elems: u64) -> Result<(), CommError> {
    match probe(env) {
        Err(CommError::PeerDead { rank }) => env.phase(Phase::Retry, |env| env.charge_ops(elems)),
        other => other,
    }
}
