//! C002 fixture: posts that can exit undrained.

fn leaky(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    env.isend(dst, buf)?;
    Ok(())
}

fn branch_leak(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    env.isend(dst, buf)?;
    if fast_path() {
        env.wait_all()?;
    }
    Ok(())
}

fn irecv_leak(env: &mut Env, src: usize) {
    let handle = env.irecv(src);
    drop(handle);
}
