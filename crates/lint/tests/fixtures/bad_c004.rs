//! C004 fixture: Phase::Retry charged outside recovery code.

fn encode_stage(env: &mut Env, elems: u64) -> Result<(), CommError> {
    env.phase(Phase::Retry, |env| env.charge_ops(elems))
}
