//! Known-bad error-hygiene fixture: every E-rule fires at a fixed line.

use std::io;

pub fn load(path: &str) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path).unwrap();
    let n = bytes.first().expect("non-empty");
    if *n == 0 {
        panic!("zero byte");
    }
    todo!("finish loading")
}
