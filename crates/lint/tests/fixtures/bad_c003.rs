//! C003 fixture: routed sends missing the part-id header.

impl<'a, S> Router<'a, S> {
    fn ship(&mut self, env: &mut Env, buf: PackBuffer) -> Result<(), CommError> {
        send_part(env, self.dst, buf)?;
        Ok(())
    }
}

fn routed_replay(env: &mut Env, pid: u64, buf: PackBuffer) -> Result<(), CommError> {
    let mut header = PackBuffer::new();
    if short_circuit() {
        header.push_u64(pid);
    }
    send_part(env, 1, buf)?;
    Ok(())
}
