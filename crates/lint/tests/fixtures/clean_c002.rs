//! C002 clean fixture: every post reaches its drain on all paths.

fn fanout(env: &mut Env, bufs: Vec<PackBuffer>) -> Result<(), CommError> {
    for (dst, buf) in bufs.into_iter().enumerate() {
        env.isend(dst, buf)?;
    }
    env.wait_all()?;
    Ok(())
}

fn posted_receive(env: &mut Env, src: usize) -> Result<Message, CommError> {
    let handle = env.irecv(src);
    env.wait_recv(handle)
}

fn branchy(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    env.isend(dst, buf)?;
    if fast_path() {
        env.wait_all()?;
    } else {
        env.wait_all()?;
    }
    Ok(())
}
