//! Known-bad phase-discipline fixture: traffic and charges that bypass
//! the engine's accounting.

use crossbeam::channel::unbounded;

fn side_channel() {
    let (tx, rx) = unbounded::<u8>();
    drop((tx, rx));
}

fn cook_the_books(ledger: &mut PhaseLedger, cost: VirtualTime) {
    ledger.record(Phase::Compress, cost);
}

fn poke_faults(env: &mut Env) {
    env.faults_mut().kill(3);
}
