//! Known-bad progress-engine fixture: a NIC transmit-window tracker
//! that breaks the determinism rules the real `progress.rs` honours.

use std::collections::HashMap;
use std::time::Instant;

struct SloppyNic {
    posted: Instant,
    windows: HashMap<u64, f64>,
}

fn arrival_jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
