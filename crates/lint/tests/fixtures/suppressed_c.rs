//! Suppression fixture for the C family: a reasoned allow silences and
//! tallies; a reasonless one is itself a violation and silences nothing.

fn fire_and_forget(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    // lint: allow(C002) — the caller owns the drain for this post
    env.isend(dst, buf)?;
    Ok(())
}

fn leaky(env: &mut Env, dst: usize, buf: PackBuffer) -> Result<(), CommError> {
    // lint: allow(C002)
    env.isend(dst, buf)?;
    Ok(())
}
