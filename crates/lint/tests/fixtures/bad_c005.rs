//! C005 fixture: transport-seam access outside the multicomputer.

fn poke(fabric: &EventFabric, dst: usize, frame: Frame) {
    fabric.push_frame(dst, 0, frame);
    let w = fabric.frame_wait(dst, 0);
    drop(w);
}
