//! Known-bad unsafe-hygiene fixture: an undocumented block and an
//! undocumented unsafe fn.

fn reinterpret(bytes: &[u8]) -> u32 {
    unsafe { *(bytes.as_ptr() as *const u32) }
}

/// Frees the buffer.
pub unsafe fn free_raw(ptr: *mut u8) {
    drop(Box::from_raw(ptr));
}
