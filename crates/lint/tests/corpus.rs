//! Corpus tests: each fixture under `tests/fixtures/` must fire its
//! rules at exactly the expected `line: rule` pairs, suppression
//! semantics must hold, and the real workspace must stay clean — the
//! same contract the CI `lint` job enforces.

use sparsedist_lint::config::Config;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lint a fixture as if it lived at `pretend_path` (scoping is purely
/// path-based, so the fixture can be placed in any rule's territory).
fn check(pretend_path: &str, name: &str) -> Vec<(usize, &'static str)> {
    let (violations, _) =
        sparsedist_lint::check_source(pretend_path, &fixture(name), &Config::default());
    violations.into_iter().map(|v| (v.line, v.rule)).collect()
}

#[test]
fn d_rules_fire_at_exact_lines() {
    assert_eq!(
        check("crates/multicomputer/src/fixture.rs", "bad_d_rules.rs"),
        vec![
            (3, "D003"),
            (4, "D001"),
            (7, "D001"),
            (12, "D002"),
            (16, "D003"),
            (17, "D003"),
        ]
    );
}

#[test]
fn d_rules_police_the_progress_engine() {
    // The NIC progress model lives in the clock-bearing multicomputer
    // crate: wall clocks, entropy, and unordered maps are all illegal
    // there, whether in a field type or a function body.
    assert_eq!(
        check(
            "crates/multicomputer/src/progress.rs",
            "bad_progress_rules.rs"
        ),
        vec![
            (4, "D003"),
            (5, "D001"),
            (8, "D001"),
            (9, "D003"),
            (13, "D002"),
        ]
    );
}

#[test]
fn d_rules_police_the_event_loop_executor() {
    // The event-loop executor replays rank tasks over virtual time; a
    // wall clock, entropy, or an unordered map in its scheduler state
    // would break bit-identical replay across runs and engines.
    let expected = vec![
        (5, "D003"),
        (6, "D001"),
        (9, "D003"),
        (10, "D001"),
        (14, "D002"),
        (18, "D001"),
    ];
    assert_eq!(
        check("crates/multicomputer/src/exec.rs", "bad_exec_rules.rs"),
        expected
    );
    // And not just under the default config: the checked-in lint.toml
    // must keep exec.rs inside D-rule territory too.
    let cfg = sparsedist_lint::load_config(&workspace_root()).expect("lint.toml parses");
    let (violations, _) = sparsedist_lint::check_source(
        "crates/multicomputer/src/exec.rs",
        &fixture("bad_exec_rules.rs"),
        &cfg,
    );
    let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(got, expected);
}

#[test]
fn p_rules_fire_at_exact_lines() {
    assert_eq!(
        check("crates/core/src/fixture.rs", "bad_p_rules.rs"),
        vec![(4, "P001"), (7, "P001"), (12, "P002"), (16, "P002")]
    );
}

#[test]
fn p_rules_exempt_the_engine() {
    // The same raw-channel code is legal inside engine.rs — that is the
    // one module allowed to own channels.
    let hits = check("crates/multicomputer/src/engine.rs", "bad_p_rules.rs");
    assert!(hits.iter().all(|&(_, rule)| rule != "P001"), "{hits:?}");
}

#[test]
fn checked_in_config_keeps_channels_out_of_the_pipeline() {
    // The `[rules.P001]` table in lint.toml exempts ONLY engine.rs: the
    // staged pipeline driver and the NIC progress model must compose
    // Env::isend/irecv/wait_all, never raw channel endpoints.
    let cfg = sparsedist_lint::load_config(&workspace_root()).expect("lint.toml parses");
    for path in [
        "crates/core/src/schemes/pipeline.rs",
        "crates/multicomputer/src/progress.rs",
    ] {
        let (violations, _) = sparsedist_lint::check_source(path, &fixture("bad_p_rules.rs"), &cfg);
        let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
        assert_eq!(
            got,
            vec![(4, "P001"), (7, "P001"), (12, "P002"), (16, "P002")],
            "at pretend path {path}"
        );
    }
    let (violations, _) = sparsedist_lint::check_source(
        "crates/multicomputer/src/engine.rs",
        &fixture("bad_p_rules.rs"),
        &cfg,
    );
    assert!(
        violations
            .iter()
            .all(|v| v.rule != "P001" && v.rule != "P002"),
        "engine.rs keeps its channel/charging exemption under lint.toml"
    );
}

#[test]
fn e_rules_fire_at_exact_lines() {
    assert_eq!(
        check("crates/cli/src/fixture.rs", "bad_e_rules.rs"),
        vec![
            (5, "E005"),
            (6, "E001"),
            (7, "E002"),
            (9, "E003"),
            (11, "E004"),
        ]
    );
}

#[test]
fn e_rules_scope_to_the_hygiene_crates() {
    // gen/ekmr/ops are outside the error-hygiene floor; only the
    // workspace-wide E004 (todo!) still fires there.
    assert_eq!(
        check("crates/gen/src/fixture.rs", "bad_e_rules.rs"),
        vec![(11, "E004")]
    );
}

#[test]
fn s_rules_fire_at_exact_lines() {
    assert_eq!(
        check("crates/core/src/fixture.rs", "bad_s_rules.rs"),
        vec![(5, "S001"), (9, "S002")]
    );
}

#[test]
fn w_rules_fire_at_exact_lines() {
    assert_eq!(
        check("crates/multicomputer/src/fixture.rs", "bad_w_rules.rs"),
        vec![(4, "W001"), (8, "W001"), (12, "W002")]
    );
}

#[test]
fn w002_is_scoped_to_clock_bearing_crates() {
    // Outside core/multicomputer only the narrowing W001 casts count.
    assert_eq!(
        check("crates/gen/src/fixture.rs", "bad_w_rules.rs"),
        vec![(4, "W001"), (8, "W001")]
    );
}

#[test]
fn w_rules_exempt_the_wire_codec_family_only() {
    // Under the checked-in lint.toml the codec modules may narrow — the
    // per-message width negotiation is the point…
    let root = workspace_root();
    let cfg = sparsedist_lint::load_config(&root).expect("lint.toml parses");
    for path in [
        "crates/core/src/wire/mod.rs",
        "crates/core/src/wire/codec.rs",
        "crates/core/src/wire/varint.rs",
        "crates/core/src/wire/bitpack.rs",
        "crates/core/src/wire/v3.rs",
    ] {
        let (violations, _) = sparsedist_lint::check_source(path, &fixture("bad_w_rules.rs"), &cfg);
        assert!(violations.is_empty(), "{path}: {violations:?}");
    }
    // …while the same truncating casts anywhere outside the family still
    // fire, including right next door in core.
    for path in [
        "crates/core/src/encode.rs",
        "crates/core/src/schemes/cfs.rs",
        "crates/multicomputer/src/pack.rs",
    ] {
        let (violations, _) = sparsedist_lint::check_source(path, &fixture("bad_w_rules.rs"), &cfg);
        let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
        assert_eq!(got, vec![(4, "W001"), (8, "W001"), (12, "W002")], "{path}");
    }
}

#[test]
fn c001_fires_on_non_receive_awaits_only() {
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "bad_c001.rs"),
        vec![(6, "C001"), (7, "C001")]
    );
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "clean_c001.rs"),
        vec![]
    );
}

#[test]
fn c002_fires_on_undrained_posts_only() {
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "bad_c002.rs"),
        vec![(4, "C002"), (9, "C002"), (17, "C002")]
    );
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "clean_c002.rs"),
        vec![]
    );
    // The engine implements the post/drain API; it is exempt by scope.
    assert_eq!(
        check("crates/multicomputer/src/engine.rs", "bad_c002.rs"),
        vec![]
    );
}

#[test]
fn c003_fires_on_headerless_routed_sends_only() {
    assert_eq!(
        check("crates/core/src/schemes/pipeline.rs", "bad_c003.rs"),
        vec![(5, "C003"), (15, "C003")]
    );
    assert_eq!(
        check("crates/core/src/schemes/pipeline.rs", "clean_c003.rs"),
        vec![]
    );
}

#[test]
fn c004_fires_on_unprovenanced_retry_charges_only() {
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "bad_c004.rs"),
        vec![(4, "C004")]
    );
    assert_eq!(
        check("crates/core/src/schemes/fixture.rs", "clean_c004.rs"),
        vec![]
    );
    // The ARQ layer itself charges Retry freely.
    assert_eq!(
        check("crates/multicomputer/src/progress.rs", "bad_c004.rs"),
        vec![]
    );
}

#[test]
fn c005_fires_outside_the_multicomputer_only() {
    assert_eq!(
        check("crates/core/src/fixture.rs", "bad_c005.rs"),
        vec![(3, "C005"), (4, "C005"), (5, "C005")]
    );
    assert_eq!(check("crates/core/src/fixture.rs", "clean_c005.rs"), vec![]);
    // Inside the engine crate the seam is legal — it *is* the seam.
    assert_eq!(
        check("crates/multicomputer/src/fixture.rs", "bad_c005.rs"),
        vec![]
    );
}

#[test]
fn c_rules_hold_under_the_checked_in_config() {
    // lint.toml must keep the C scoping: pipeline.rs in C002 territory,
    // engine.rs exempt, and the multicomputer outside C005.
    let cfg = sparsedist_lint::load_config(&workspace_root()).expect("lint.toml parses");
    let (violations, _) = sparsedist_lint::check_source(
        "crates/core/src/schemes/pipeline.rs",
        &fixture("bad_c002.rs"),
        &cfg,
    );
    let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(got, vec![(4, "C002"), (9, "C002"), (17, "C002")]);
    let (engine, _) = sparsedist_lint::check_source(
        "crates/multicomputer/src/engine.rs",
        &fixture("bad_c002.rs"),
        &cfg,
    );
    assert!(engine.iter().all(|v| v.rule != "C002"), "{engine:?}");
    let (seam, _) = sparsedist_lint::check_source(
        "crates/multicomputer/src/exec.rs",
        &fixture("bad_c005.rs"),
        &cfg,
    );
    assert!(seam.iter().all(|v| v.rule != "C005"), "{seam:?}");
}

#[test]
fn c_suppressions_silence_tally_and_misfire() {
    let (violations, tally) = sparsedist_lint::check_source(
        "crates/core/src/schemes/fixture.rs",
        &fixture("suppressed_c.rs"),
        &Config::default(),
    );
    let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(got, vec![(11, "LINT"), (12, "C002")]);
    assert_eq!(tally.get("C002"), Some(&1));
}

#[test]
fn s003_pins_forbid_unsafe_code_in_the_unsafe_free_crate_roots() {
    // The bad fixture fires at line 1…
    assert_eq!(
        check("crates/gen/src/lib.rs", "bad_s003.rs"),
        vec![(1, "S003")]
    );
    // …and it stays out of scope for crates that do hold unsafe code.
    assert_eq!(check("crates/core/src/lib.rs", "bad_s003.rs"), vec![]);
    // The real crate roots all carry the attribute (S003-clean).
    let root = workspace_root();
    for rel in [
        "crates/lint/src/lib.rs",
        "crates/lint/src/main.rs",
        "crates/gen/src/lib.rs",
        "crates/cli/src/lib.rs",
        "crates/cli/src/main.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).expect("crate root readable");
        assert!(
            src.contains("#![forbid(unsafe_code)]"),
            "{rel} lost its #![forbid(unsafe_code)]"
        );
        let (v, _) = sparsedist_lint::check_source(rel, &src, &Config::default());
        assert!(v.iter().all(|v| v.rule != "S003"), "{rel}: {v:?}");
    }
}

#[test]
fn suppressions_silence_tally_and_misfire() {
    let (violations, tally) = sparsedist_lint::check_source(
        "crates/core/src/fixture.rs",
        &fixture("suppressed.rs"),
        &Config::default(),
    );
    let got: Vec<(usize, &str)> = violations.iter().map(|v| (v.line, v.rule)).collect();
    // The justified cast at line 6 is silent; the reasonless suppression
    // is itself a violation and silences nothing; the unknown rule is
    // reported where it was written.
    assert_eq!(got, vec![(10, "LINT"), (11, "W002"), (15, "LINT")]);
    assert_eq!(tally.get("W002"), Some(&1));
}

#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    let cfg = sparsedist_lint::load_config(&root).expect("lint.toml parses");
    let report = sparsedist_lint::run(&root, &cfg).expect("workspace walk succeeds");
    assert!(
        report.files_checked > 50,
        "walker found only {} files",
        report.files_checked
    );
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_suppressions_all_carry_reasons() {
    // is_clean() above already implies this (reasonless suppressions are
    // LINT violations), but assert the tally is non-trivial so the
    // suppression machinery is demonstrably exercised by the real tree.
    let root = workspace_root();
    let cfg = sparsedist_lint::load_config(&root).expect("lint.toml parses");
    let report = sparsedist_lint::run(&root, &cfg).expect("workspace walk succeeds");
    assert!(report.suppression_total() > 0);
    assert!(
        report.suppressions.contains_key("D001"),
        "{:?}",
        report.suppressions
    );
}

#[test]
fn vendor_audit_is_clean() {
    let findings = sparsedist_lint::vendor::audit(&workspace_root()).expect("audit runs");
    let rendered: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        findings.is_empty(),
        "vendor audit findings:\n{}",
        rendered.join("\n")
    );
}
