//! The rule catalog and the per-file checker.
//!
//! Five rule families, each guarding an invariant the runtime tests can
//! only sample:
//!
//! * **D — determinism.** The headline property of the reproduction is
//!   that SFC/CFS/ED virtual clocks are bit-identical across
//!   sequential/parallel, traced/untraced and v1/v2 wire runs. A stray
//!   `Instant::now()`, an ambient RNG or a `HashMap` iteration in a
//!   clock-bearing module silently breaks that.
//! * **P — phase-charge discipline.** Every microsecond on the virtual
//!   clock must flow through the engine's charge API so it lands in a
//!   [`Phase`] ledger. Raw channel primitives or direct ledger mutation
//!   outside the engine bypass the accounting.
//! * **E — error hygiene.** Hot paths in `core`, `multicomputer` and
//!   `cli` return `SparsedistError`; `unwrap`/`expect`/`panic!` in
//!   non-test code either get converted or carry a written justification.
//! * **S — unsafe hygiene.** `unsafe` blocks need `// SAFETY:` comments,
//!   `unsafe fn`s need `# Safety` doc sections.
//! * **W — width discipline.** Truncating `as` casts live in the
//!   `core/src/wire/` codec family (the one place narrowing is the
//!   point) — all other code uses `try_from` or documents why the cast
//!   cannot lose bits.
//! * **C — communication safety.** The async engine's protocol
//!   invariants, checked syntactically via the token-tree parser
//!   ([`crate::parse`]) and the per-function dataflow walk
//!   ([`crate::flow`]): receives are the only yield points (C001),
//!   every nonblocking post reaches a drain on all paths (C002), routed
//!   sends carry part-id headers (C003), `Phase::Retry` is charged only
//!   from recovery code (C004), and the transport seam never leaks out
//!   of `crates/multicomputer` (C005).
//!
//! Scopes are module globs; the checked-in `lint.toml` can override the
//! defaults per rule. Suppression is explicit and always carries a
//! reason: `// lint: allow(RULE_ID) — reason`, covering the comment's
//! line and the next.
//!
//! [`Phase`]: ../../multicomputer/timing/enum.Phase.html

use crate::config::Config;
use crate::flow;
use crate::glob::matches_any;
use crate::lexer::LexedFile;
use crate::parse::{self, FnItem, ParsedFile};
use std::collections::BTreeMap;

/// How a rule inspects a file.
#[derive(Debug, Clone, Copy)]
pub enum RuleKind {
    /// Flag lines whose code view contains any of these tokens
    /// (identifier-boundary-checked substring match).
    Tokens(&'static [&'static str]),
    /// Like [`RuleKind::Tokens`], but only on lines that also contain
    /// `requires` — e.g. foreign error types only in `pub fn` signatures.
    TokensRequiring {
        /// The offending tokens.
        tokens: &'static [&'static str],
        /// A token that must also be present for the line to count.
        requires: &'static str,
    },
    /// `unsafe` blocks must have a `// SAFETY:` comment within the five
    /// preceding lines (or on the same line).
    UnsafeBlockSafetyComment,
    /// `unsafe fn` declarations must have a `# Safety` section in their
    /// doc comment.
    UnsafeFnSafetyDoc,
    /// Every `.await` must await a call to one of these functions
    /// (C001: receive is the engine's only yield point).
    AwaitAllowlist(&'static [&'static str]),
    /// Every *trigger* call must reach a *resolver* call on all non-`?`
    /// paths to a function exit (C002: posts are drained).
    PostsDrained(&'static [(&'static [&'static str], &'static [&'static str])]),
    /// In functions whose name contains a `ctx_fn` marker or whose
    /// `impl` type is in `ctx_impl`, every `trigger` call must be
    /// preceded by a `guards` call on all paths (C003: headers first).
    GuardBeforeCall {
        /// The guarded call.
        trigger: &'static str,
        /// Calls that establish the guard.
        guards: &'static [&'static str],
        /// Function-name substrings selecting the protocol context.
        ctx_fn: &'static [&'static str],
        /// `impl` type names selecting the protocol context.
        ctx_impl: &'static [&'static str],
    },
    /// `Phase::Retry` may be charged (`phase(`/`record(`/`charge(`)
    /// only inside functions whose name or body shows recovery context
    /// (C004: retry provenance).
    RetryProvenance {
        /// Function-name substrings that mark recovery code.
        fn_markers: &'static [&'static str],
        /// Body identifiers that mark recovery code.
        body_markers: &'static [&'static str],
    },
    /// The file must contain this token in its code view (S003: crate
    /// roots keep their `#![forbid(unsafe_code)]`).
    RequiredHeader(&'static str),
}

/// One lint rule: identity, scope defaults, and what it matches.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable ID, e.g. `D001` — what suppressions name.
    pub id: &'static str,
    /// One-line statement of the violated invariant.
    pub summary: &'static str,
    /// What to do instead.
    pub hint: &'static str,
    /// Matching strategy.
    pub kind: RuleKind,
    /// Default include globs (overridden by `[rules.ID] include`).
    pub include: &'static [&'static str],
    /// Default exclude globs (overridden by `[rules.ID] exclude`).
    pub exclude: &'static [&'static str],
}

/// Globs shared by the rules that police the whole first-party tree.
const ALL_SRC: &[&str] = &["src/**", "crates/*/src/**"];
/// The crates whose non-test code must be panic-free (`SparsedistError`
/// everywhere).
const ERROR_HYGIENE: &[&str] = &[
    "crates/core/src/**",
    "crates/multicomputer/src/**",
    "crates/cli/src/**",
];
/// Modules that bear on the virtual clock: everything the engine, the
/// ledgers and the scheme drivers execute while charges accumulate.
const CLOCK_BEARING: &[&str] = &["crates/core/src/**", "crates/multicomputer/src/**"];

/// The rule catalog, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D001",
        summary: "wall-clock time source in deterministic code",
        hint: "derive time from the virtual clock / machine model; real time only in WallClock mode with a suppression",
        kind: RuleKind::Tokens(&["Instant", "SystemTime"]),
        include: CLOCK_BEARING,
        exclude: &[],
    },
    Rule {
        id: "D002",
        summary: "ambient entropy source",
        hint: "thread seeds through an explicit u64 (FaultPlan/StdRng::seed_from_u64 style); never ambient RNG or hashing entropy",
        kind: RuleKind::Tokens(&["thread_rng", "from_entropy", "rand::random", "RandomState"]),
        include: ALL_SRC,
        exclude: &[],
    },
    Rule {
        id: "D003",
        summary: "unordered collection in a clock-bearing module",
        hint: "use BTreeMap/BTreeSet (or a sorted Vec) so iteration order — and therefore charge order — is deterministic",
        kind: RuleKind::Tokens(&["HashMap", "HashSet"]),
        include: CLOCK_BEARING,
        exclude: &[],
    },
    Rule {
        id: "P001",
        summary: "raw channel primitive outside the engine",
        hint: "all traffic goes through Env::send/Env::recv so wire costs are charged; only engine.rs owns channels",
        kind: RuleKind::Tokens(&["crossbeam::", "unbounded", "bounded"]),
        include: ALL_SRC,
        exclude: &["crates/multicomputer/src/engine.rs"],
    },
    Rule {
        id: "P002",
        summary: "direct ledger/clock mutation outside the timing layer",
        hint: "book time via Env::phase/Env::charge_ops; ledgers are written only by engine.rs, timing.rs, trace.rs and the collectives",
        kind: RuleKind::Tokens(&["faults_mut", "wire_mut", ".record(Phase::"]),
        include: ALL_SRC,
        exclude: &[
            "crates/multicomputer/src/engine.rs",
            "crates/multicomputer/src/timing.rs",
            "crates/multicomputer/src/trace.rs",
            "crates/multicomputer/src/collectives.rs",
        ],
    },
    Rule {
        id: "E001",
        summary: "`.unwrap()` in non-test code",
        hint: "return SparsedistError (or use expect with a documented invariant and a suppression)",
        kind: RuleKind::Tokens(&[".unwrap()"]),
        include: ERROR_HYGIENE,
        exclude: &[],
    },
    Rule {
        id: "E002",
        summary: "`.expect(...)` in non-test code",
        hint: "return SparsedistError; keep expect only for true invariants, each with a reasoned suppression",
        kind: RuleKind::Tokens(&[".expect("]),
        include: ERROR_HYGIENE,
        exclude: &[],
    },
    Rule {
        id: "E003",
        summary: "`panic!` in non-test code",
        hint: "return SparsedistError; panics are for unreachable states only, each with a reasoned suppression",
        kind: RuleKind::Tokens(&["panic!"]),
        include: ERROR_HYGIENE,
        exclude: &[],
    },
    Rule {
        id: "E004",
        summary: "stub or debug macro left in source",
        hint: "finish the implementation and drop todo!/unimplemented!/dbg!",
        kind: RuleKind::Tokens(&["todo!", "unimplemented!", "dbg!"]),
        include: ALL_SRC,
        exclude: &[],
    },
    Rule {
        id: "E005",
        summary: "public fallible API with a foreign error type",
        hint: "public fallible APIs return Result<_, SparsedistError> (or a typed error convertible into it)",
        kind: RuleKind::TokensRequiring {
            tokens: &["io::Result<", "Box<dyn Error"],
            requires: "pub fn",
        },
        include: ERROR_HYGIENE,
        exclude: &[],
    },
    Rule {
        id: "S001",
        summary: "`unsafe` block without a `// SAFETY:` comment",
        hint: "state the invariant that makes the block sound in a SAFETY comment directly above it",
        kind: RuleKind::UnsafeBlockSafetyComment,
        include: ALL_SRC,
        exclude: &[],
    },
    Rule {
        id: "S002",
        summary: "`unsafe fn` without a `# Safety` doc section",
        hint: "document the caller's obligations under a `# Safety` heading",
        kind: RuleKind::UnsafeFnSafetyDoc,
        include: ALL_SRC,
        exclude: &[],
    },
    Rule {
        id: "W001",
        summary: "narrowing integer cast (`as u8`/`as u16`/`as u32`)",
        hint: "use try_from and surface the failure; narrowing belongs in the core/src/wire/ codec family where it is negotiated",
        kind: RuleKind::Tokens(&["as u8", "as u16", "as u32"]),
        include: ALL_SRC,
        exclude: &["crates/core/src/wire/**"],
    },
    Rule {
        id: "W002",
        summary: "`as usize` cast on a potentially 64-bit value",
        hint: "use usize::try_from so 32-bit hosts fail loudly instead of truncating wire indices",
        kind: RuleKind::Tokens(&["as usize"]),
        include: CLOCK_BEARING,
        exclude: &["crates/core/src/wire/**"],
    },
    Rule {
        id: "C001",
        summary: "`.await` on a non-receive call (yield-point discipline)",
        hint: "the event-loop engine parks tasks only at receives; await recv_async/recv_part/receive_parts/routed_receive (or the engine internals), never an arbitrary future",
        kind: RuleKind::AwaitAllowlist(&[
            "recv_async",
            "next_frame_async",
            "frame_wait",
            "wait_recv_async",
            "recv_part",
            "receive_parts",
            "routed_receive",
        ]),
        include: ALL_SRC,
        exclude: &[],
    },
    Rule {
        id: "C002",
        summary: "nonblocking post can reach a function exit without a drain",
        hint: "every isend must reach wait_all (and every irecv a wait_recv) on all paths, or the function must document that its caller owns the drain with a suppression",
        kind: RuleKind::PostsDrained(&[
            (&["isend"], &["wait_all"]),
            (&["irecv"], &["wait_recv", "wait_recv_async"]),
        ]),
        include: ALL_SRC,
        exclude: &["crates/multicomputer/src/engine.rs"],
    },
    Rule {
        id: "C003",
        summary: "routed-protocol send without a part-id header on every path",
        hint: "routed frames are dedup'd by part id: push_u64(pid) into the header buffer before any send_part in Router/routed code",
        kind: RuleKind::GuardBeforeCall {
            trigger: "send_part",
            guards: &["push_u64"],
            ctx_fn: &["routed"],
            ctx_impl: &["Router"],
        },
        include: CLOCK_BEARING,
        exclude: &[],
    },
    Rule {
        id: "C004",
        summary: "`Phase::Retry` charged outside recovery code",
        hint: "only the ARQ layer and recovery paths (replay/re-home/timeout handling) may book Phase::Retry; anything else corrupts the fault accounting the chaos tests pin",
        kind: RuleKind::RetryProvenance {
            fn_markers: &["retry", "replay", "recover", "redeliver", "timeout"],
            body_markers: &[
                "PeerDead",
                "RetriesExhausted",
                "retry_within",
                "rehome",
                "FaultKind",
            ],
        },
        include: CLOCK_BEARING,
        exclude: &[
            "crates/multicomputer/src/engine.rs",
            "crates/multicomputer/src/progress.rs",
        ],
    },
    Rule {
        id: "C005",
        summary: "transport-seam access outside crates/multicomputer",
        hint: "Links/EventFabric and the frame/ack mailboxes are the engine's private seam; schemes talk to Env only",
        kind: RuleKind::Tokens(&[
            "Links",
            "EventFabric",
            "push_frame",
            "frame_wait",
            "try_next_frame",
            "push_ack",
            "pop_ack",
        ]),
        include: ALL_SRC,
        exclude: &["crates/multicomputer/src/**"],
    },
    Rule {
        id: "S003",
        summary: "crate root is missing `#![forbid(unsafe_code)]`",
        hint: "crates with no unsafe code pin that fact at the root so a future unsafe block fails to compile instead of slipping in",
        kind: RuleKind::RequiredHeader("forbid(unsafe_code)"),
        include: &[
            "crates/lint/src/lib.rs",
            "crates/lint/src/main.rs",
            "crates/gen/src/lib.rs",
            "crates/cli/src/lib.rs",
            "crates/cli/src/main.rs",
        ],
        exclude: &[],
    },
];

/// Look up a rule by ID.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding: where, which rule, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule ID (`D001`, …) — `LINT` for malformed suppressions.
    pub rule: &'static str,
    /// The rule summary (or a specific message for `LINT` findings).
    pub message: String,
    /// What to do instead.
    pub hint: String,
    /// The raw source line, for context rendering.
    pub source: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )?;
        writeln!(f, "    | {}", self.source.trim_end())?;
        write!(f, "    = help: {}", self.hint)
    }
}

/// Is `rule` in scope for `path`, honouring config overrides?
fn rule_applies(rule: &Rule, cfg: &Config, path: &str) -> bool {
    let (include, exclude): (Vec<String>, Vec<String>) = match cfg.rules.get(rule.id) {
        Some(scope) => (
            if scope.include.is_empty() {
                rule.include.iter().map(|s| s.to_string()).collect()
            } else {
                scope.include.clone()
            },
            if scope.exclude.is_empty() {
                rule.exclude.iter().map(|s| s.to_string()).collect()
            } else {
                scope.exclude.clone()
            },
        ),
        None => (
            rule.include.iter().map(|s| s.to_string()).collect(),
            rule.exclude.iter().map(|s| s.to_string()).collect(),
        ),
    };
    matches_any(&include, path) && !matches_any(&exclude, path)
}

/// Identifier-boundary-aware substring search: a match is rejected when
/// the needle starts (ends) with an identifier character and the
/// neighbouring haystack character is also one.
fn token_hits(line: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let first_ident = needle.chars().next().is_some_and(is_ident);
    let last_ident = needle.chars().last().is_some_and(is_ident);
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let before_ok =
            !first_ident || at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !last_ident
            || !line[at + needle.len()..]
                .chars()
                .next()
                .is_some_and(is_ident);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Check one lexed file against every in-scope rule. Returns the
/// violations plus this file's suppression tally (rule ID → count of
/// `lint: allow` annotations naming it).
pub fn check_file(
    path: &str,
    lexed: &LexedFile,
    cfg: &Config,
) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let mut violations = Vec::new();
    let mut tally: BTreeMap<String, usize> = BTreeMap::new();

    // Suppression coverage: line (1-based) -> rule IDs silenced there.
    let mut allowed: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for sup in &lexed.suppressions {
        for rule in &sup.rules {
            if rule_by_id(rule).is_none() {
                violations.push(Violation {
                    path: path.to_string(),
                    line: sup.line,
                    rule: "LINT",
                    message: format!("suppression names unknown rule `{rule}`"),
                    hint: "use an ID from `sparsedist-lint --rules`".to_string(),
                    source: raw_line(lexed, sup.line),
                });
                continue;
            }
            if sup.reason.is_empty() {
                violations.push(Violation {
                    path: path.to_string(),
                    line: sup.line,
                    rule: "LINT",
                    message: format!("suppression of {rule} has no reason"),
                    hint: "write `// lint: allow(RULE) — why this is sound`".to_string(),
                    source: raw_line(lexed, sup.line),
                });
                continue;
            }
            *tally.entry(rule.clone()).or_insert(0) += 1;
            allowed.entry(sup.line).or_default().push(rule.clone());
            allowed.entry(sup.line + 1).or_default().push(rule.clone());
        }
    }
    let is_allowed = |line: usize, rule: &str| {
        allowed
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    };

    // The C rules and S003 need token trees; parse once, lazily.
    let needs_parse = RULES.iter().any(|r| {
        matches!(
            r.kind,
            RuleKind::AwaitAllowlist(_)
                | RuleKind::PostsDrained(_)
                | RuleKind::GuardBeforeCall { .. }
                | RuleKind::RetryProvenance { .. }
        ) && rule_applies(r, cfg, path)
    });
    let parsed: Option<ParsedFile> = if needs_parse {
        Some(parse::parse(lexed))
    } else {
        None
    };

    for rule in RULES {
        if !rule_applies(rule, cfg, path) {
            continue;
        }
        let mut flag = |lineno: usize| {
            if !is_allowed(lineno, rule.id) {
                violations.push(Violation {
                    path: path.to_string(),
                    line: lineno,
                    rule: rule.id,
                    message: rule.summary.to_string(),
                    hint: rule.hint.to_string(),
                    source: raw_line(lexed, lineno),
                });
            }
        };
        match rule.kind {
            RuleKind::Tokens(tokens) => {
                for (idx, line) in lexed.code_lines.iter().enumerate() {
                    if lexed.test_mask.get(idx).copied().unwrap_or(false) {
                        continue;
                    }
                    if tokens.iter().any(|t| !token_hits(line, t).is_empty()) {
                        flag(idx + 1);
                    }
                }
            }
            RuleKind::TokensRequiring { tokens, requires } => {
                for (idx, line) in lexed.code_lines.iter().enumerate() {
                    if lexed.test_mask.get(idx).copied().unwrap_or(false) {
                        continue;
                    }
                    if line.contains(requires)
                        && tokens.iter().any(|t| !token_hits(line, t).is_empty())
                    {
                        flag(idx + 1);
                    }
                }
            }
            RuleKind::UnsafeBlockSafetyComment => {
                for lineno in unsafe_blocks_without_safety(lexed) {
                    flag(lineno);
                }
            }
            RuleKind::UnsafeFnSafetyDoc => {
                for lineno in unsafe_fns_without_safety_doc(lexed) {
                    flag(lineno);
                }
            }
            RuleKind::AwaitAllowlist(allowed_callees) => {
                let Some(p) = parsed.as_ref() else { continue };
                for site in parse::awaits(&p.roots) {
                    if masked(lexed, site.line) {
                        continue;
                    }
                    let ok = site
                        .callee
                        .as_deref()
                        .is_some_and(|c| allowed_callees.contains(&c));
                    if !ok {
                        flag(site.line);
                    }
                }
            }
            RuleKind::PostsDrained(pairs) => {
                let Some(p) = parsed.as_ref() else { continue };
                for f in &p.fns {
                    let events = flow::events_of(&f.body);
                    for (triggers, resolvers) in pairs {
                        for lineno in flow::pending_at_exit(&events, triggers, resolvers) {
                            if !masked(lexed, lineno) {
                                flag(lineno);
                            }
                        }
                    }
                }
            }
            RuleKind::GuardBeforeCall {
                trigger,
                guards,
                ctx_fn,
                ctx_impl,
            } => {
                let Some(p) = parsed.as_ref() else { continue };
                for f in p
                    .fns
                    .iter()
                    .filter(|f| in_protocol_ctx(f, ctx_fn, ctx_impl))
                {
                    let events = flow::events_of(&f.body);
                    for lineno in flow::unguarded(&events, trigger, guards) {
                        if !masked(lexed, lineno) {
                            flag(lineno);
                        }
                    }
                }
            }
            RuleKind::RetryProvenance {
                fn_markers,
                body_markers,
            } => {
                let Some(p) = parsed.as_ref() else { continue };
                for f in &p.fns {
                    let charges = flow::retry_charge_lines(&f.body.children);
                    if charges.is_empty() || is_recovery_fn(f, fn_markers, body_markers) {
                        continue;
                    }
                    for lineno in charges {
                        if !masked(lexed, lineno) {
                            flag(lineno);
                        }
                    }
                }
            }
            RuleKind::RequiredHeader(token) => {
                let present = lexed
                    .code_lines
                    .iter()
                    .any(|l| !token_hits(l, token).is_empty());
                if !present {
                    flag(1);
                }
            }
        }
    }
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (violations, tally)
}

fn masked(lexed: &LexedFile, lineno: usize) -> bool {
    lexed
        .test_mask
        .get(lineno.saturating_sub(1))
        .copied()
        .unwrap_or(false)
}

/// C003 context: the function name carries a protocol marker, or the
/// method belongs to a protocol `impl` type.
fn in_protocol_ctx(f: &FnItem, ctx_fn: &[&str], ctx_impl: &[&str]) -> bool {
    ctx_fn.iter().any(|m| f.name.contains(m))
        || f.impl_ctx.as_deref().is_some_and(|c| ctx_impl.contains(&c))
}

/// C004 context: the function's name or body shows it is recovery code.
fn is_recovery_fn(f: &FnItem, fn_markers: &[&str], body_markers: &[&str]) -> bool {
    fn_markers.iter().any(|m| f.name.contains(m))
        || body_markers
            .iter()
            .any(|m| flow::contains_ident(&f.body.children, m))
}

fn raw_line(lexed: &LexedFile, lineno: usize) -> String {
    lexed
        .raw_lines
        .get(lineno.saturating_sub(1))
        .cloned()
        .unwrap_or_default()
}

/// Lines (1-based) with an `unsafe` block lacking a `SAFETY:` comment on
/// the same line or within the five preceding lines.
fn unsafe_blocks_without_safety(lexed: &LexedFile) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, line) in lexed.code_lines.iter().enumerate() {
        if lexed.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let Some(at) = token_hits(line, "unsafe").first().copied() else {
            continue;
        };
        // `unsafe fn` / `unsafe impl` / `unsafe trait` are S002 territory.
        let rest = line[at + "unsafe".len()..].trim_start();
        if rest.starts_with("fn") || rest.starts_with("impl") || rest.starts_with("trait") {
            continue;
        }
        let lookback = idx.saturating_sub(5);
        let documented = (lookback..=idx).any(|j| {
            lexed
                .comment_lines
                .get(j)
                .is_some_and(|l| l.contains("SAFETY:"))
        });
        if !documented {
            out.push(idx + 1);
        }
    }
    out
}

/// Lines (1-based) declaring an `unsafe fn` whose doc comment lacks a
/// `# Safety` section.
fn unsafe_fns_without_safety_doc(lexed: &LexedFile) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, line) in lexed.code_lines.iter().enumerate() {
        if lexed.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let has_unsafe_fn = token_hits(line, "unsafe")
            .iter()
            .any(|&at| line[at + "unsafe".len()..].trim_start().starts_with("fn"));
        if !has_unsafe_fn {
            continue;
        }
        // Walk the contiguous doc/attribute block above the declaration.
        let mut documented = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let raw = lexed.raw_lines[j].trim();
            if raw.starts_with("///")
                || raw.starts_with("//!")
                || raw.starts_with("#[")
                || raw.starts_with("//")
            {
                if lexed
                    .comment_lines
                    .get(j)
                    .is_some_and(|l| l.contains("# Safety"))
                {
                    documented = true;
                    break;
                }
            } else {
                break;
            }
        }
        if !documented {
            out.push(idx + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cfg() -> Config {
        Config::default()
    }

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, &lex(src), &cfg()).0
    }

    #[test]
    fn token_boundaries() {
        assert_eq!(token_hits("let t = Instant::now();", "Instant").len(), 1);
        assert!(token_hits("let t = MyInstant::now();", "Instant").is_empty());
        assert!(token_hits("let bounded_queue = 3;", "bounded").is_empty());
        assert_eq!(
            token_hits("let (tx, rx) = unbounded();", "unbounded").len(),
            1
        );
        assert_eq!(token_hits("x as u32;", "as u32").len(), 1);
        assert!(token_hits("x as u320;", "as u32").is_empty());
    }

    #[test]
    fn d_rules_fire_in_scope_only() {
        let src = "use std::time::Instant;\n";
        assert_eq!(check("crates/core/src/gather.rs", src)[0].rule, "D001");
        assert!(check("crates/gen/src/random.rs", src).is_empty());
    }

    #[test]
    fn e_rules_skip_tests() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn g() { y.unwrap(); }\n}\n";
        let v = check("crates/core/src/gather.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn suppressions_silence_and_tally() {
        let src = "fn f() {\n  // lint: allow(E001) — poisoned mutex means a rank already panicked\n  x.unwrap();\n}\n";
        let (v, tally) = check_file("crates/core/src/gather.rs", &lex(src), &cfg());
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(tally["E001"], 1);
    }

    #[test]
    fn reasonless_suppressions_are_violations() {
        let src = "// lint: allow(E001)\nx.unwrap();\n";
        let v = check("crates/core/src/gather.rs", src);
        assert!(v
            .iter()
            .any(|v| v.rule == "LINT" && v.message.contains("no reason")));
        // The E001 itself still fires: a bad suppression silences nothing.
        assert!(v.iter().any(|v| v.rule == "E001"));
    }

    #[test]
    fn unknown_rule_suppression_is_flagged() {
        let src = "// lint: allow(Z999) — whatever\nlet x = 1;\n";
        let v = check("crates/core/src/gather.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown rule"), "{}", v[0].message);
    }

    #[test]
    fn safety_comment_satisfies_s001() {
        let bad = "fn f() {\n  let b = unsafe { transmute(x) };\n}\n";
        let good = "fn f() {\n  // SAFETY: x is a POD byte array.\n  let b = unsafe { transmute(x) };\n}\n";
        assert_eq!(check("crates/core/src/encode.rs", bad)[0].rule, "S001");
        assert!(check("crates/core/src/encode.rs", good).is_empty());
    }

    #[test]
    fn safety_doc_satisfies_s002() {
        let bad = "/// Does things.\npub unsafe fn f() {}\n";
        let good =
            "/// Does things.\n///\n/// # Safety\n/// Caller guarantees x.\npub unsafe fn f() {}\n";
        let v = check("crates/core/src/encode.rs", bad);
        assert!(v.iter().any(|v| v.rule == "S002"), "{v:?}");
        assert!(check("crates/core/src/encode.rs", good).is_empty());
    }

    #[test]
    fn w001_exempts_the_wire_family_by_default() {
        let src = "let x = big as u32;\n";
        // A truncating cast outside the wire family still fires…
        assert_eq!(check("crates/core/src/encode.rs", src)[0].rule, "W001");
        // …while every module of the codec stack is exempt.
        for path in [
            "crates/core/src/wire/mod.rs",
            "crates/core/src/wire/codec.rs",
            "crates/core/src/wire/varint.rs",
            "crates/core/src/wire/bitpack.rs",
            "crates/core/src/wire/v3.rs",
        ] {
            assert!(check(path, src).is_empty(), "{path}");
        }
        // The exemption does not leak upward or sideways.
        assert_eq!(check("crates/core/src/schemes/cfs.rs", src)[0].rule, "W001");
    }

    #[test]
    fn e005_requires_pub_fn_on_line() {
        let src = "pub fn load(p: &Path) -> io::Result<Vec<u8>> {\n";
        assert_eq!(check("crates/cli/src/commands.rs", src)[0].rule, "E005");
        let private = "fn load(p: &Path) -> io::Result<Vec<u8>> {\n";
        assert!(check("crates/cli/src/commands.rs", private).is_empty());
    }

    #[test]
    fn config_override_rescopes_a_rule() {
        let mut c = Config::default();
        c.rules.insert(
            "W001".to_string(),
            crate::config::RuleScope {
                include: vec!["crates/ekmr/src/**".to_string()],
                exclude: vec![],
            },
        );
        let lexed = lex("let x = big as u16;\n");
        let (in_scope, _) = check_file("crates/ekmr/src/sparse3.rs", &lexed, &c);
        assert_eq!(in_scope.len(), 1);
        let (out_of_scope, _) = check_file("crates/core/src/encode.rs", &lexed, &c);
        assert!(out_of_scope.is_empty());
    }
}
