//! A per-function dataflow walk over token trees.
//!
//! [`events_of`] lowers a function body ([`crate::parse::Group`]) into a
//! small event language — calls, `?` exits, `return`s, branches, loops —
//! and two all-paths analyses answer the questions the C rules ask:
//!
//! * [`pending_at_exit`]: which *trigger* calls (`isend`/`irecv` posts)
//!   can reach a function exit without a *resolver* (`wait_all`/
//!   `wait_recv`) on that path;
//! * [`unguarded`]: which *trigger* calls (`send_part` in routed code)
//!   are reachable without a *guard* (`push_u64` part-id header) having
//!   run first on every path.
//!
//! Both are abstract interpretations over the event tree: branch arms
//! are joined by set-union (pending) / all-arms-must-agree (guarded),
//! and a loop body is analysed once from its entry state and joined with
//! the zero-iteration path. `?` exits are deliberately exempt from
//! [`pending_at_exit`]: a post abandoned on an error path is the ARQ
//! layer's abort contract, not a leak (DESIGN.md §13 lists this and the
//! other soundness caveats).

use crate::parse::{is_ident_atom, Group, Tree};
use std::collections::BTreeSet;

/// One control-flow-relevant event inside a function body.
#[derive(Debug)]
pub enum Ev {
    /// A call `name(…)` (method or free; macros excluded).
    Call {
        /// The callee identifier.
        name: String,
        /// 1-based line of the callee.
        line: usize,
    },
    /// A `?` operator — an early error exit.
    Question(usize),
    /// A `return` — an early normal exit.
    Return(usize),
    /// `if`/`else` chain or `match`: one event list per arm. A missing
    /// `else` contributes an empty arm.
    Branch(Vec<Vec<Ev>>),
    /// `loop`/`while`/`for` body (may run zero times).
    Loop(Vec<Ev>),
}

/// Lower a body group into an event sequence.
pub fn events_of(body: &Group) -> Vec<Ev> {
    events_of_trees(&body.children)
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "loop", "while", "for", "return", "fn", "let", "mut", "in", "as",
    "move", "async", "await", "break", "continue", "ref", "pub", "use", "where", "impl", "dyn",
];

fn events_of_trees(trees: &[Tree]) -> Vec<Ev> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Atom(t) => match t.text.as_str() {
                "if" => {
                    i = parse_if(trees, i, &mut out);
                    continue;
                }
                "match" => {
                    i = parse_match(trees, i, &mut out);
                    continue;
                }
                "loop" | "while" | "for" => {
                    let (head_end, body) = find_body(trees, i + 1);
                    // Condition / iterator expressions run before the body.
                    out.extend(events_of_trees(&trees[i + 1..head_end]));
                    match body {
                        Some(g) => {
                            out.push(Ev::Loop(events_of_trees(&g.children)));
                            i = head_end + 1;
                        }
                        None => i = head_end,
                    }
                    continue;
                }
                "return" => {
                    // The returned expression evaluates before the exit.
                    let mut j = i + 1;
                    while j < trees.len() {
                        if let Tree::Atom(a) = &trees[j] {
                            if a.text == ";" {
                                break;
                            }
                        }
                        j += 1;
                    }
                    out.extend(events_of_trees(&trees[i + 1..j]));
                    out.push(Ev::Return(t.line));
                    i = j + 1;
                    continue;
                }
                "?" => out.push(Ev::Question(t.line)),
                name if is_ident_atom(name) && !KEYWORDS.contains(&name) => {
                    // `name(…)` is a call unless it is a macro (`name!`).
                    if let Some(Tree::Group(g)) = trees.get(i + 1) {
                        if g.delim == '(' {
                            out.extend(events_of_trees(&g.children));
                            out.push(Ev::Call {
                                name: name.to_string(),
                                line: t.line,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
                _ => {}
            },
            Tree::Group(g) => out.extend(events_of_trees(&g.children)),
        }
        i += 1;
    }
    out
}

/// From `from`, locate the next `{}` group at this level (the body) and
/// return (index-of-body, body). Stops at `;`.
fn find_body(trees: &[Tree], from: usize) -> (usize, Option<&Group>) {
    let mut j = from;
    while j < trees.len() {
        match &trees[j] {
            Tree::Group(g) if g.delim == '{' => return (j, Some(g)),
            Tree::Atom(a) if a.text == ";" => return (j, None),
            _ => j += 1,
        }
    }
    (j, None)
}

/// Parse an `if`/`else if`/`else` chain starting at `at` (the `if`
/// atom); push condition events then one [`Ev::Branch`]; return the
/// index just past the chain.
fn parse_if(trees: &[Tree], at: usize, out: &mut Vec<Ev>) -> usize {
    let mut arms: Vec<Vec<Ev>> = Vec::new();
    let mut i = at;
    loop {
        // `i` points at `if`. Condition runs on every path so far.
        let (body_at, body) = find_body(trees, i + 1);
        out.extend(events_of_trees(&trees[i + 1..body_at]));
        match body {
            Some(g) => arms.push(events_of_trees(&g.children)),
            None => {
                arms.push(Vec::new());
                out.push(Ev::Branch(arms));
                return body_at;
            }
        }
        i = body_at + 1;
        // `else {…}` | `else if …` | end of chain.
        match trees.get(i).and_then(|t| match t {
            Tree::Atom(a) => Some(a.text.as_str()),
            Tree::Group(_) => None,
        }) {
            Some("else") => match trees.get(i + 1) {
                Some(Tree::Group(g)) if g.delim == '{' => {
                    arms.push(events_of_trees(&g.children));
                    out.push(Ev::Branch(arms));
                    return i + 2;
                }
                Some(Tree::Atom(a)) if a.text == "if" => {
                    i += 1;
                    continue;
                }
                _ => break,
            },
            _ => break,
        }
    }
    // No `else`: the fall-through arm is empty.
    arms.push(Vec::new());
    out.push(Ev::Branch(arms));
    i
}

/// Parse a `match` at `at`: scrutinee events, then a branch with one arm
/// per `=>`. Arm patterns and guards contribute to their own arm.
fn parse_match(trees: &[Tree], at: usize, out: &mut Vec<Ev>) -> usize {
    let (body_at, body) = find_body(trees, at + 1);
    out.extend(events_of_trees(&trees[at + 1..body_at]));
    let Some(g) = body else { return body_at };
    let mut arms: Vec<Vec<Ev>> = Vec::new();
    let kids = &g.children;
    let mut i = 0;
    let mut seg_start = 0;
    while i < kids.len() {
        let is_arrow = matches!(&kids[i], Tree::Atom(a) if a.text == "=>");
        if !is_arrow {
            i += 1;
            continue;
        }
        // Pattern/guard events precede the arm body on that arm's path.
        let mut arm = events_of_trees(&kids[seg_start..i]);
        i += 1;
        match kids.get(i) {
            Some(Tree::Group(b)) if b.delim == '{' => {
                arm.extend(events_of_trees(&b.children));
                i += 1;
                // Optional trailing comma.
                if matches!(kids.get(i), Some(Tree::Atom(a)) if a.text == ",") {
                    i += 1;
                }
            }
            _ => {
                // Expression arm: runs to the next top-level comma.
                let start = i;
                while i < kids.len() {
                    if matches!(&kids[i], Tree::Atom(a) if a.text == ",") {
                        break;
                    }
                    i += 1;
                }
                arm.extend(events_of_trees(&kids[start..i]));
                if i < kids.len() {
                    i += 1;
                }
            }
        }
        arms.push(arm);
        seg_start = i;
    }
    if !arms.is_empty() {
        out.push(Ev::Branch(arms));
    }
    body_at + 1
}

/// Lines of *trigger* calls that can reach a function exit (fall-through
/// or `return`) with no *resolver* call on that path. `?` exits are
/// exempt (ARQ abort contract).
pub fn pending_at_exit(events: &[Ev], triggers: &[&str], resolvers: &[&str]) -> Vec<usize> {
    let mut reported = BTreeSet::new();
    let end = walk_pending(events, &BTreeSet::new(), triggers, resolvers, &mut reported);
    reported.extend(end);
    reported.into_iter().collect()
}

fn walk_pending(
    events: &[Ev],
    incoming: &BTreeSet<usize>,
    triggers: &[&str],
    resolvers: &[&str],
    reported: &mut BTreeSet<usize>,
) -> BTreeSet<usize> {
    let mut pending = incoming.clone();
    for ev in events {
        match ev {
            Ev::Call { name, line } => {
                if resolvers.contains(&name.as_str()) {
                    pending.clear();
                } else if triggers.contains(&name.as_str()) {
                    pending.insert(*line);
                }
            }
            Ev::Question(_) => {}
            Ev::Return(_) => {
                reported.extend(pending.iter().copied());
            }
            Ev::Branch(arms) => {
                let mut joined = BTreeSet::new();
                for arm in arms {
                    joined.extend(walk_pending(arm, &pending, triggers, resolvers, reported));
                }
                pending = joined;
            }
            Ev::Loop(body) => {
                let once = walk_pending(body, &pending, triggers, resolvers, reported);
                pending.extend(once);
            }
        }
    }
    pending
}

/// Lines of *trigger* calls reachable before a *guard* call has run on
/// every path leading there.
pub fn unguarded(events: &[Ev], trigger: &str, guards: &[&str]) -> Vec<usize> {
    let mut reported = BTreeSet::new();
    walk_guarded(events, false, trigger, guards, &mut reported);
    reported.into_iter().collect()
}

fn walk_guarded(
    events: &[Ev],
    incoming: bool,
    trigger: &str,
    guards: &[&str],
    reported: &mut BTreeSet<usize>,
) -> bool {
    let mut guarded = incoming;
    for ev in events {
        match ev {
            Ev::Call { name, line } => {
                if guards.contains(&name.as_str()) {
                    guarded = true;
                } else if name == trigger && !guarded {
                    reported.insert(*line);
                }
            }
            Ev::Branch(arms) => {
                let mut all = !arms.is_empty();
                for arm in arms {
                    all &= walk_guarded(arm, guarded, trigger, guards, reported);
                }
                guarded = guarded || all;
            }
            Ev::Loop(body) => {
                // Zero-iteration path: the loop cannot establish the guard.
                walk_guarded(body, guarded, trigger, guards, reported);
            }
            Ev::Question(_) | Ev::Return(_) => {}
        }
    }
    guarded
}

/// Does the forest contain the token sequence `Phase :: Retry` inside
/// the argument group of a `phase(…)`/`record(…)`/`charge(…)` call?
/// Returns the lines of such charges.
pub fn retry_charge_lines(trees: &[Tree]) -> Vec<usize> {
    let mut out = Vec::new();
    scan_retry(trees, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

const CHARGE_FNS: &[&str] = &["phase", "record", "charge", "charge_ops"];

fn scan_retry(trees: &[Tree], out: &mut Vec<usize>) {
    for (i, tree) in trees.iter().enumerate() {
        match tree {
            Tree::Group(g) => scan_retry(&g.children, out),
            Tree::Atom(t) if CHARGE_FNS.contains(&t.text.as_str()) => {
                if let Some(Tree::Group(g)) = trees.get(i + 1) {
                    if g.delim == '(' {
                        if let Some(line) = find_retry_token(&g.children) {
                            out.push(line);
                        }
                    }
                }
            }
            Tree::Atom(_) => {}
        }
    }
}

fn find_retry_token(trees: &[Tree]) -> Option<usize> {
    for (i, tree) in trees.iter().enumerate() {
        match tree {
            Tree::Group(g) => {
                if let Some(l) = find_retry_token(&g.children) {
                    return Some(l);
                }
            }
            Tree::Atom(t) if t.text == "Phase" => {
                if atomic(trees.get(i + 1)) == Some("::")
                    && atomic(trees.get(i + 2)) == Some("Retry")
                {
                    return Some(t.line);
                }
            }
            Tree::Atom(_) => {}
        }
    }
    None
}

fn atomic(tree: Option<&Tree>) -> Option<&str> {
    match tree {
        Some(Tree::Atom(t)) => Some(t.text.as_str()),
        _ => None,
    }
}

/// Does the forest contain `needle` as an identifier atom anywhere?
pub fn contains_ident(trees: &[Tree], needle: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Atom(a) => a.text == needle,
        Tree::Group(g) => contains_ident(&g.children, needle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn body_events(src: &str) -> Vec<Ev> {
        let p = parse(&lex(src));
        events_of(&p.fns[0].body)
    }

    #[test]
    fn straight_line_post_then_wait_is_clean() {
        let ev =
            body_events("fn f(env: &mut Env) {\n    env.isend(dst, b);\n    env.wait_all();\n}\n");
        assert!(pending_at_exit(&ev, &["isend"], &["wait_all"]).is_empty());
    }

    #[test]
    fn post_without_wait_is_pending() {
        let ev = body_events("fn f(env: &mut Env) {\n    env.isend(dst, b);\n}\n");
        assert_eq!(pending_at_exit(&ev, &["isend"], &["wait_all"]), vec![2]);
    }

    #[test]
    fn one_branch_missing_the_wait_is_pending() {
        let src = "fn f(env: &mut Env) {\n    env.isend(dst, b);\n    if fast {\n        env.wait_all();\n    }\n}\n";
        let ev = body_events(src);
        assert_eq!(pending_at_exit(&ev, &["isend"], &["wait_all"]), vec![2]);
        let src2 = "fn f(env: &mut Env) {\n    env.isend(dst, b);\n    if fast {\n        env.wait_all();\n    } else {\n        env.wait_all();\n    }\n}\n";
        let ev2 = body_events(src2);
        assert!(pending_at_exit(&ev2, &["isend"], &["wait_all"]).is_empty());
    }

    #[test]
    fn early_return_with_pending_post_is_reported() {
        let src = "fn f(env: &mut Env) {\n    env.isend(dst, b);\n    if done {\n        return 0;\n    }\n    env.wait_all();\n}\n";
        let ev = body_events(src);
        assert_eq!(pending_at_exit(&ev, &["isend"], &["wait_all"]), vec![2]);
    }

    #[test]
    fn question_mark_exits_are_exempt() {
        let src = "fn f(env: &mut Env) -> Result<(), E> {\n    env.isend(dst, b)?;\n    env.other()?;\n    env.wait_all();\n    Ok(())\n}\n";
        let ev = body_events(src);
        assert!(pending_at_exit(&ev, &["isend"], &["wait_all"]).is_empty());
    }

    #[test]
    fn loop_post_resolved_after_loop_is_clean() {
        let src = "fn f(env: &mut Env) {\n    for dst in 0..n {\n        env.isend(dst, b);\n    }\n    env.wait_all();\n}\n";
        let ev = body_events(src);
        assert!(pending_at_exit(&ev, &["isend"], &["wait_all"]).is_empty());
    }

    #[test]
    fn match_arm_missing_the_wait_is_pending() {
        let src = "fn f(env: &mut Env) {\n    env.isend(dst, b);\n    match mode {\n        Mode::A => env.wait_all(),\n        Mode::B => {}\n    }\n}\n";
        let ev = body_events(src);
        assert_eq!(pending_at_exit(&ev, &["isend"], &["wait_all"]), vec![2]);
    }

    #[test]
    fn guard_before_trigger_on_all_paths_is_clean() {
        let src = "fn ship(&mut self) {\n    buf.push_u64(pid);\n    if big {\n        self.send_part(env, buf);\n    } else {\n        self.send_part(env, buf);\n    }\n}\n";
        let ev = body_events(src);
        assert!(unguarded(&ev, "send_part", &["push_u64"]).is_empty());
    }

    #[test]
    fn trigger_without_guard_is_reported() {
        let src =
            "fn ship(&mut self) {\n    self.send_part(env, buf);\n    buf.push_u64(pid);\n}\n";
        let ev = body_events(src);
        assert_eq!(unguarded(&ev, "send_part", &["push_u64"]), vec![2]);
    }

    #[test]
    fn guard_in_one_branch_only_does_not_cover_later_triggers() {
        let src = "fn ship(&mut self) {\n    if hdr {\n        buf.push_u64(pid);\n    }\n    self.send_part(env, buf);\n}\n";
        let ev = body_events(src);
        assert_eq!(unguarded(&ev, "send_part", &["push_u64"]), vec![5]);
    }

    #[test]
    fn retry_charges_are_found_inside_charge_calls_only() {
        let src = "fn f(env: &mut Env) {\n    env.phase(Phase::Retry, |env| replay(env));\n    let label = Phase::Retry;\n}\n";
        let p = parse(&lex(src));
        assert_eq!(retry_charge_lines(&p.roots), vec![2]);
    }

    #[test]
    fn contains_ident_walks_groups() {
        let p = parse(&lex(
            "fn f() { match e { E::PeerDead => retry(), _ => {} } }\n",
        ));
        assert!(contains_ident(&p.roots, "PeerDead"));
        assert!(!contains_ident(&p.roots, "Stalled"));
    }
}
