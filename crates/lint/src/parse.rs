//! A dependency-free token-tree parser over the lexer's code view.
//!
//! The C rule family (communication safety) needs more structure than
//! per-line token matching: *which function* a call sits in, *what was
//! awaited*, and *which paths* reach an exit. Full Rust parsing is out of
//! scope (the crate is dependency-free so it runs in the offline CI), but
//! Rust's brace/paren/bracket structure is enough: this module tokenizes
//! the comment/string-blanked code view, builds **token trees** (atoms
//! and delimiter groups, the same shape `proc_macro` exposes), and then
//! extracts **function items** — name, declaration line, `async`-ness,
//! the enclosing `impl` type, and the body group — skipping anything
//! under the lexer's `#[cfg(test)]` mask.
//!
//! The walk is deliberately forgiving: an unclosed delimiter closes at
//! end of file, a stray closer is dropped. Rule checks built on top (see
//! [`crate::flow`]) are therefore *best-effort syntactic* analyses; the
//! soundness caveats are catalogued in DESIGN.md §13.

use crate::lexer::LexedFile;

/// One lexical atom: an identifier/number/keyword or a punctuation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// The token text, e.g. `isend`, `::`, `=>`, `.`.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// A token tree: an atom, or a delimited group of trees.
#[derive(Debug)]
pub enum Tree {
    /// A single token.
    Atom(Tok),
    /// A `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited group of token trees.
#[derive(Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// The trees between the delimiters.
    pub children: Vec<Tree>,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the declaration carries `async`.
    pub is_async: bool,
    /// The `impl`/`trait` type this method belongs to, if any (for a
    /// trait impl `impl Tr for Ty`, this is `Ty`).
    pub impl_ctx: Option<String>,
    /// The `{…}` body group.
    pub body: Group,
}

/// A parsed file: the token-tree forest plus the extracted functions.
#[derive(Debug)]
pub struct ParsedFile {
    /// Top-level token trees (whole file).
    pub roots: Vec<Tree>,
    /// Every non-test `fn` with a body, in source order.
    pub fns: Vec<FnItem>,
}

/// Parse a lexed file into token trees and function items.
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let toks = tokenize(&lexed.code_lines);
    let roots = build_trees(&toks);
    let mut fns = Vec::new();
    collect_fns(&roots, None, lexed, &mut fns);
    ParsedFile { roots, fns }
}

/// Multi-character punctuation we keep intact (everything the flow walk
/// or the C rules pattern-match on).
const MULTI_PUNCT: &[&str] = &["::", "=>", "->", "..", "&&", "||", "<<", ">>", "==", "!="];

fn tokenize(code_lines: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
                continue;
            }
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if MULTI_PUNCT.contains(&two.as_str()) {
                toks.push(Tok {
                    text: two,
                    line: lineno,
                });
                i += 2;
                continue;
            }
            toks.push(Tok {
                text: c.to_string(),
                line: lineno,
            });
            i += 1;
        }
    }
    toks
}

fn closer_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Build the token-tree forest. Unclosed groups close at EOF; stray
/// closers are dropped.
fn build_trees(toks: &[Tok]) -> Vec<Tree> {
    // Stack of (group-in-progress); the virtual bottom entry collects roots.
    let mut stack: Vec<Group> = vec![Group {
        delim: ' ',
        open_line: 0,
        children: Vec::new(),
    }];
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push(Group {
                delim: t.text.chars().next().unwrap_or('('),
                open_line: t.line,
                children: Vec::new(),
            }),
            ")" | "]" | "}" => {
                // Close the innermost group whose closer matches; a stray
                // closer (stack bottom) is dropped.
                if stack.len() > 1 {
                    let expected = closer_of(stack[stack.len() - 1].delim);
                    if t.text.starts_with(expected) {
                        let done = match stack.pop() {
                            Some(g) => g,
                            None => continue,
                        };
                        if let Some(parent) = stack.last_mut() {
                            parent.children.push(Tree::Group(done));
                        }
                    }
                }
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.children.push(Tree::Atom(t.clone()));
                }
            }
        }
    }
    // Unclosed groups: fold into their parents.
    while stack.len() > 1 {
        let done = match stack.pop() {
            Some(g) => g,
            None => break,
        };
        if let Some(parent) = stack.last_mut() {
            parent.children.push(Tree::Group(done));
        }
    }
    stack.pop().map(|g| g.children).unwrap_or_default()
}

fn atom_text(tree: &Tree) -> Option<&str> {
    match tree {
        Tree::Atom(t) => Some(t.text.as_str()),
        Tree::Group(_) => None,
    }
}

fn is_masked(lexed: &LexedFile, lineno: usize) -> bool {
    lexed
        .test_mask
        .get(lineno.saturating_sub(1))
        .copied()
        .unwrap_or(false)
}

/// The `impl`/`trait` target name from the trees between the keyword and
/// the body group: skip generics (`<…>` at angle depth ≥ 1); a trait
/// impl's target is the path after `for`, otherwise the first type path.
fn impl_target(header: &[Tree]) -> Option<String> {
    let mut angle: usize = 0;
    let mut after_for = false;
    let mut first: Option<String> = None;
    let mut named_for: Option<String> = None;
    for t in header {
        let Some(text) = atom_text(t) else { continue };
        match text {
            "<" | "<<" => angle += text.len(),
            ">" | ">>" => angle = angle.saturating_sub(text.len()),
            "for" if angle == 0 => after_for = true,
            "dyn" | "&" | "mut" | "'" | "::" | ".." => {}
            w if angle == 0
                && w.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_') =>
            {
                if after_for {
                    if named_for.is_none() {
                        named_for = Some(w.to_string());
                    }
                } else if first.is_none() {
                    first = Some(w.to_string());
                }
            }
            _ => {}
        }
    }
    named_for.or(first)
}

/// Walk a tree level, recursing into `mod`/`impl`/`trait` bodies, and
/// collect every non-test `fn` that has a body.
fn collect_fns(trees: &[Tree], ctx: Option<&str>, lexed: &LexedFile, out: &mut Vec<FnItem>) {
    let mut i = 0;
    // Atoms seen since the last item boundary, for `async fn` detection.
    let mut modifiers: Vec<&str> = Vec::new();
    while i < trees.len() {
        match &trees[i] {
            Tree::Atom(t) => match t.text.as_str() {
                "impl" | "trait" | "mod" => {
                    // Find the body `{}` group at this level; `mod x;` has none.
                    let mut j = i + 1;
                    let mut body_at = None;
                    while j < trees.len() {
                        match &trees[j] {
                            Tree::Group(g) if g.delim == '{' => {
                                body_at = Some(j);
                                break;
                            }
                            Tree::Atom(a) if a.text == ";" => break,
                            _ => j += 1,
                        }
                    }
                    if let Some(at) = body_at {
                        let name = if t.text == "impl" {
                            impl_target(&trees[i + 1..at])
                        } else {
                            // `trait Name {…}` / `mod name {…}`: methods in a
                            // trait body get the trait as context; plain
                            // modules keep the outer context.
                            match t.text.as_str() {
                                "trait" => trees[i + 1..at]
                                    .iter()
                                    .find_map(atom_text)
                                    .map(|s| s.to_string()),
                                _ => ctx.map(|s| s.to_string()),
                            }
                        };
                        if let Tree::Group(g) = &trees[at] {
                            collect_fns(&g.children, name.as_deref(), lexed, out);
                        }
                        i = at + 1;
                        modifiers.clear();
                        continue;
                    }
                    i = j + 1;
                    modifiers.clear();
                    continue;
                }
                "fn" => {
                    let decl_line = t.line;
                    let name = trees
                        .get(i + 1)
                        .and_then(atom_text)
                        .unwrap_or("")
                        .to_string();
                    // Scan forward for the body group, stopping at `;`
                    // (trait method declarations have no body).
                    let mut j = i + 2;
                    let mut body_at = None;
                    while j < trees.len() {
                        match &trees[j] {
                            Tree::Group(g) if g.delim == '{' => {
                                body_at = Some(j);
                                break;
                            }
                            Tree::Atom(a) if a.text == ";" => break,
                            _ => j += 1,
                        }
                    }
                    let is_async = modifiers.contains(&"async");
                    if let Some(at) = body_at {
                        if let Tree::Group(g) = &trees[at] {
                            if !is_masked(lexed, decl_line) {
                                out.push(FnItem {
                                    name,
                                    line: decl_line,
                                    is_async,
                                    impl_ctx: ctx.map(|s| s.to_string()),
                                    body: Group {
                                        delim: g.delim,
                                        open_line: g.open_line,
                                        children: clone_trees(&g.children),
                                    },
                                });
                            }
                        }
                        i = at + 1;
                    } else {
                        i = j + 1;
                    }
                    modifiers.clear();
                    continue;
                }
                ";" => {
                    modifiers.clear();
                }
                _ => modifiers.push(t.text.as_str()),
            },
            Tree::Group(_) => modifiers.clear(),
        }
        i += 1;
    }
}

fn clone_trees(trees: &[Tree]) -> Vec<Tree> {
    trees
        .iter()
        .map(|t| match t {
            Tree::Atom(a) => Tree::Atom(a.clone()),
            Tree::Group(g) => Tree::Group(Group {
                delim: g.delim,
                open_line: g.open_line,
                children: clone_trees(&g.children),
            }),
        })
        .collect()
}

/// One `.await` site: the callee whose returned future is awaited (the
/// identifier before the argument group, or the identifier itself for
/// `fut.await`), plus the line of the `await` keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AwaitSite {
    /// `Some("recv_async")` for `env.recv_async(src).await`; `None` when
    /// the awaited expression has no syntactic callee (e.g. a block).
    pub callee: Option<String>,
    /// 1-based line of the `await` keyword.
    pub line: usize,
}

/// Every `.await` in the forest, recursively.
pub fn awaits(trees: &[Tree]) -> Vec<AwaitSite> {
    let mut out = Vec::new();
    scan_awaits(trees, &mut out);
    out
}

fn scan_awaits(trees: &[Tree], out: &mut Vec<AwaitSite>) {
    for (i, tree) in trees.iter().enumerate() {
        match tree {
            Tree::Group(g) => scan_awaits(&g.children, out),
            Tree::Atom(t) if t.text == "await" => {
                let dotted = i >= 1 && atom_text(&trees[i - 1]) == Some(".");
                if !dotted {
                    continue;
                }
                let callee = match trees.get(i.wrapping_sub(2)) {
                    // `callee(args).await` — the ident before the group.
                    Some(Tree::Group(g)) if g.delim == '(' => trees
                        .get(i.wrapping_sub(3))
                        .and_then(atom_text)
                        .filter(|s| is_ident_atom(s))
                        .map(|s| s.to_string()),
                    // `fut.await` — the ident itself.
                    Some(Tree::Atom(a)) if is_ident_atom(&a.text) => Some(a.text.clone()),
                    _ => None,
                };
                out.push(AwaitSite {
                    callee,
                    line: t.line,
                });
            }
            Tree::Atom(_) => {}
        }
    }
}

pub(crate) fn is_ident_atom(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fns_are_extracted_with_context() {
        let src = "impl<'a, S: Stages> Router<'a, S> {\n    async fn ship(&mut self) -> Result<(), E> {\n        self.go();\n    }\n}\nfn free() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "ship");
        assert_eq!(p.fns[0].line, 2);
        assert!(p.fns[0].is_async);
        assert_eq!(p.fns[0].impl_ctx.as_deref(), Some("Router"));
        assert_eq!(p.fns[1].name, "free");
        assert!(!p.fns[1].is_async);
        assert_eq!(p.fns[1].impl_ctx, None);
    }

    #[test]
    fn trait_impl_context_is_the_self_type() {
        let src = "impl Stages for EdStages {\n    fn f(&self) { self.x(); }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].impl_ctx.as_deref(), Some("EdStages"));
    }

    #[test]
    fn test_masked_fns_are_skipped() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn fake() {}\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn awaits_resolve_their_callee() {
        let src = "async fn f(env: &mut Env) {\n    let m = env.recv_async(src).await?;\n    fut.await;\n    (make())().await;\n}\n";
        let p = parsed(src);
        let sites = awaits(&p.roots);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].callee.as_deref(), Some("recv_async"));
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[1].callee.as_deref(), Some("fut"));
        assert_eq!(sites[2].callee, None);
    }

    #[test]
    fn strings_and_comments_never_produce_trees() {
        let src = "fn f() {\n    let s = \"isend( { ) await\"; // fn g() {\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert!(awaits(&p.roots).is_empty());
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let p = parsed("fn f() { if x { y(); }\n");
        assert_eq!(p.fns.len(), 1);
        let q = parsed(") } ] fn g() {}\n");
        assert_eq!(q.fns.len(), 1);
    }
}
