//! A small, comment- and string-aware lexer for Rust source.
//!
//! The lint pass does not parse Rust (no `syn` — the crate is
//! dependency-free so it runs in the fully offline CI). Instead it
//! classifies every character of a file as *code*, *comment* or *string*
//! with a hand-rolled scanner, then hands rule checking three parallel
//! views of the file:
//!
//! * `code_lines` — the source with comment and string-literal contents
//!   blanked out (replaced by spaces), so token rules can match `as u32`
//!   or `.unwrap()` without tripping over doc prose or log messages;
//! * `comment_lines` — only the comment content (everything else
//!   blanked), used for `// SAFETY:` and `// lint: allow(...)` parsing so
//!   a string literal can never forge an annotation;
//! * `raw_lines` — the untouched text, for rendering violations and for
//!   doc-comment (`///`) structure checks.
//!
//! The scanner understands nested `/* */` block comments, `//` line
//! comments, string/byte-string literals with escapes, raw strings
//! (`r"…"`, `r#"…"#`, any hash depth), char literals, and the char-vs-
//! lifetime ambiguity (`'a'` vs `'a`).
//!
//! Two derived overlays complete the picture:
//!
//! * a **test mask** marking lines inside `#[cfg(test)]` / `#[test]`
//!   items (rules only police non-test code);
//! * the **suppressions**: `// lint: allow(RULE_ID) — reason` comments,
//!   which silence matching rules on their own and the following line and
//!   are counted for the CI summary.

/// One parsed inline suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// 1-based line the comment sits on; it covers this line and the next.
    pub line: usize,
    /// The rule IDs inside `allow(...)`, e.g. `["E002"]`.
    pub rules: Vec<String>,
    /// The justification after the closing paren (may be empty — the
    /// checker rejects reason-less suppressions).
    pub reason: String,
}

/// A lexed source file: raw, code-only and comment-only views plus
/// derived overlays.
#[derive(Debug)]
pub struct LexedFile {
    /// Untouched source lines.
    pub raw_lines: Vec<String>,
    /// Source lines with comments and string contents blanked to spaces.
    pub code_lines: Vec<String>,
    /// Source lines with everything *except* comment content blanked.
    pub comment_lines: Vec<String>,
    /// `test_mask[i]` is true when line `i` (0-based) belongs to a
    /// `#[cfg(test)]` module or a `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Inline `// lint: allow(...)` annotations, in line order.
    pub suppressions: Vec<Suppression>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth rides along (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` followed by n `#`s.
    RawStr(u32),
    Char,
}

/// Lex `text` into parallel raw/code/comment line views with overlays.
pub fn lex(text: &str) -> LexedFile {
    let raw_lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
    let (code_lines, comment_lines) = split_views(text);
    let test_mask = compute_test_mask(&code_lines);
    let suppressions = parse_suppressions(&comment_lines);
    LexedFile {
        raw_lines,
        code_lines,
        comment_lines,
        test_mask,
        suppressions,
    }
}

/// Split `text` into a code-only view and a comment-only view, both with
/// the original line structure (non-view characters become spaces).
fn split_views(text: &str) -> (Vec<String>, Vec<String>) {
    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comment = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    // Push to exactly one view per consumed char so the views stay
    // line-aligned; newlines go to both.
    macro_rules! emit {
        (code $c:expr) => {{
            code.push($c);
            comment.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (comment $c:expr) => {{
            comment.push($c);
            code.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (blank $c:expr) => {{
            let keep = if $c == '\n' { '\n' } else { ' ' };
            code.push(keep);
            comment.push(keep);
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    emit!(blank '/');
                    emit!(blank '/');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    emit!(blank '/');
                    emit!(blank '*');
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    emit!(code '"');
                    i += 1;
                }
                'r' | 'b' if starts_raw_string(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        emit!(blank ' ');
                    }
                    emit!(code '"');
                    i += consumed + 1; // prefix + opening quote
                }
                'b' if next == Some('"') => {
                    state = State::Str;
                    emit!(blank 'b');
                    emit!(code '"');
                    i += 2;
                }
                '\'' => {
                    state = if is_char_literal(&chars, i) {
                        State::Char
                    } else {
                        State::Code // a lifetime: keep it as code
                    };
                    emit!(code '\'');
                    i += 1;
                }
                _ => {
                    emit!(code c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    emit!(blank '\n');
                } else {
                    emit!(comment c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit!(blank '*');
                    emit!(blank '/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    emit!(blank '/');
                    emit!(blank '*');
                    i += 2;
                } else {
                    emit!(comment c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char entirely (handles \" and \\).
                    emit!(blank ' ');
                    if let Some(n) = next {
                        emit!(blank n);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    emit!(code '"');
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    emit!(code '"');
                    for _ in 0..hashes {
                        emit!(blank ' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && next.is_some() {
                    emit!(blank ' ');
                    emit!(blank ' ');
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    emit!(code '\'');
                    i += 1;
                } else {
                    emit!(blank c);
                    i += 1;
                }
            }
        }
    }
    let code_lines = code.lines().map(|l| l.to_string()).collect();
    let comment_lines = comment.lines().map(|l| l.to_string()).collect();
    (code_lines, comment_lines)
}

/// Does `r"`, `r#"`, `br"`, `br#"` … start at `i`?
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // `r#foo` (raw identifier) has exactly one hash then an ident char.
    if hashes == 1
        && chars
            .get(j)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
    {
        return false;
    }
    // The `r`/`b` must start an identifier, not end one (`var"` etc.).
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    chars.get(j) == Some(&'"')
}

/// Return (hash count, chars before the opening quote) for a raw string
/// starting at `i`.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Mark every line belonging to a `#[cfg(test)]` item or `#[test]` fn.
fn compute_test_mask(code_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        let line = &code_lines[i];
        let is_test_attr = line.contains("#[cfg(test)]")
            || line.contains("#[test]")
            || line.contains("#[cfg(all(test")
            || line.contains("#[cfg(any(test");
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Find the opening brace of the decorated item and mark through
        // its matching close. Attributes may stack; scanning forward for
        // the first `{` handles `#[cfg(test)]\n#[allow(...)]\nmod tests {`.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'outer: while j < code_lines.len() {
            mask[j] = true;
            for c in code_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    // `mod tests;` before any brace: a semicolon-terminated
                    // item ends the attribute's scope.
                    ';' if !opened => break 'outer,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Parse `lint: allow(RULE_ID[, RULE_ID…]) — reason` annotations from the
/// comment-only view (so string literals can never forge one).
fn parse_suppressions(comment_lines: &[String]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, comment) in comment_lines.iter().enumerate() {
        // The annotation must *start* the comment (`// lint: allow(...)`),
        // so prose that merely mentions the syntax — e.g. doc comments,
        // whose content starts with the third `/` or a `!` — never counts.
        let trimmed = comment.trim_start();
        let Some(after) = trimmed.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '-', ':', '–'])
            .trim()
            .to_string();
        out.push(Suppression {
            line: idx + 1,
            rules,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = lex("let x = 1; // trailing .unwrap()\nlet s = \"panic!(inside)\";\n");
        assert!(!f.code_lines[0].contains("unwrap"));
        assert!(f.code_lines[0].contains("let x = 1;"));
        assert!(f.comment_lines[0].contains("trailing .unwrap()"));
        assert!(!f.code_lines[1].contains("panic!"));
        assert!(f.code_lines[1].contains("let s = \""));
        assert!(!f.comment_lines[1].contains("panic!"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("a /* one /* two */ still */ b\n/* open\n.unwrap()\n*/ c\n");
        assert!(f.code_lines[0].contains('a'));
        assert!(f.code_lines[0].contains('b'));
        assert!(!f.code_lines[0].contains("still"));
        assert!(!f.code_lines[2].contains("unwrap"));
        assert!(f.comment_lines[2].contains("unwrap"));
        assert!(f.code_lines[3].contains('c'));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let f = lex("let a = r#\"as u32 \"quoted\" inside\"#; let b = 2 as u64;\n");
        assert!(!f.code_lines[0].contains("as u32"));
        assert!(f.code_lines[0].contains("as u64"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\n");
        assert!(f.code_lines[0].contains("&'a str"));
        assert!(f.code_lines[1].starts_with("let q = "));
        assert!(f.code_lines[1].contains(';'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = lex("let s = \"a\\\"b.unwrap()c\"; let t = 3;\n");
        assert!(!f.code_lines[0].contains("unwrap"));
        assert!(f.code_lines[0].contains("let t = 3;"));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.test_mask[0]);
        assert!(f.test_mask[1] && f.test_mask[2] && f.test_mask[4] && f.test_mask[5]);
        assert!(!f.test_mask[6]);
    }

    #[test]
    fn test_mask_covers_single_test_fn() {
        let src = "#[test]\nfn t() {\n    a.unwrap();\n}\nfn real() {}\n";
        let f = lex(src);
        assert!(f.test_mask[0] && f.test_mask[2]);
        assert!(!f.test_mask[4]);
    }

    #[test]
    fn suppressions_parse_rules_and_reason() {
        let src = "let t = Instant::now(); // lint: allow(D001) — wall-clock mode is real time\n// lint: allow(E001, E002): invariant\nx.unwrap();\n";
        let f = lex(src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].line, 1);
        assert_eq!(f.suppressions[0].rules, vec!["D001"]);
        assert_eq!(f.suppressions[0].reason, "wall-clock mode is real time");
        assert_eq!(f.suppressions[1].rules, vec!["E001", "E002"]);
        assert_eq!(f.suppressions[1].reason, "invariant");
    }

    #[test]
    fn suppression_marker_inside_string_is_ignored() {
        let f = lex("let s = \"// lint: allow(E001) — nope\";\n");
        assert!(f.suppressions.is_empty());
    }
}
