//! `sparsedist-lint` — repo-invariant static analysis for the sparsedist
//! workspace.
//!
//! The runtime proptests *sample* the determinism contract (bit-identical
//! virtual clocks across sequential/parallel, traced/untraced and v1/v2
//! wire runs); this crate checks it at the *source* level, where
//! regressions actually enter: a stray `Instant::now()`, a `HashMap`
//! iteration in a clock-bearing module, a truncating cast outside the
//! wire module. See [`rules`] for the catalog (D/P/E/S/W/C families),
//! [`lexer`] for the comment/string-aware scanner, [`parse`] and
//! [`flow`] for the syntax-aware layer behind the C (communication
//! safety) rules, [`config`] for `lint.toml` scoping and [`vendor`] for
//! the offline-dependency audit.
//!
//! Dependency-free on purpose, like `bench_gate`: it must run in the
//! fully offline CI before anything else is built.

#![forbid(unsafe_code)]

pub mod config;
pub mod flow;
pub mod glob;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod vendor;

use config::Config;
use rules::Violation;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The outcome of a full lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings across every file, in path order.
    pub violations: Vec<Violation>,
    /// `lint: allow` annotations seen, keyed by rule ID.
    pub suppressions: BTreeMap<String, usize>,
    /// Number of files checked.
    pub files_checked: usize,
}

impl Report {
    /// True when the tree is violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total suppression count across rules.
    pub fn suppression_total(&self) -> usize {
        self.suppressions.values().sum()
    }
}

/// Escape `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// Render a report as machine-readable JSON (`--format json`): findings,
/// suppression tally and file count in one object, schema stable for CI
/// consumers and the GitHub problem matcher pipeline.
pub fn report_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\"}}",
            json_escape(&v.path),
            v.line,
            v.rule,
            json_escape(&v.message),
            json_escape(&v.hint)
        ));
    }
    if report.violations.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str(",\n  \"suppressions\": {");
    for (i, (rule, n)) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {n}", json_escape(rule)));
    }
    out.push_str(&format!(
        "}},\n  \"files_checked\": {},\n  \"clean\": {}\n}}\n",
        report.files_checked,
        report.is_clean()
    ));
    out
}

/// Load `lint.toml` from `root` (falling back to built-in defaults when
/// the file does not exist).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(default_config());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    config::parse(&text).map_err(|e| e.to_string())
}

/// The scope used when no `lint.toml` is checked in: every first-party
/// `.rs` file, nothing vendored or generated.
pub fn default_config() -> Config {
    Config {
        files_include: vec![
            "src/**/*.rs".to_string(),
            "crates/*/src/**/*.rs".to_string(),
            "crates/bench/benches/**/*.rs".to_string(),
        ],
        files_exclude: vec![
            "vendor/**".to_string(),
            "target/**".to_string(),
            "crates/lint/tests/fixtures/**".to_string(),
        ],
        rules: BTreeMap::new(),
    }
}

/// Recursively collect the `.rs` files under `root` selected by the
/// config's include/exclude globs, as sorted workspace-relative paths.
pub fn collect_files(root: &Path, cfg: &Config) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, root, cfg, &mut out);
    out.sort();
    out
}

fn walk(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = relative(root, &path);
        // Prune whole subtrees that cannot contain matches cheaply.
        if path.is_dir() {
            if rel == ".git" || rel == "target" || glob::matches_any(&cfg.files_exclude, &rel) {
                continue;
            }
            walk(root, &path, cfg, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            && glob::matches_any(&cfg.files_include, &rel)
            && !glob::matches_any(&cfg.files_exclude, &rel)
        {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint one file (already read) against the config.
pub fn check_source(
    rel: &str,
    source: &str,
    cfg: &Config,
) -> (Vec<Violation>, BTreeMap<String, usize>) {
    let lexed = lexer::lex(source);
    rules::check_file(rel, &lexed, cfg)
}

/// Run the full pass over a workspace root.
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    for path in collect_files(root, cfg) {
        let rel = relative(root, &path);
        let source = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (violations, tally) = check_source(&rel, &source, cfg);
        report.violations.extend(violations);
        for (rule, n) in tally {
            *report.suppressions.entry(rule).or_insert(0) += n;
        }
        report.files_checked += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_skips_vendor_and_fixtures() {
        let cfg = default_config();
        assert!(glob::matches_any(
            &cfg.files_include,
            "crates/core/src/wire.rs"
        ));
        assert!(glob::matches_any(
            &cfg.files_exclude,
            "vendor/rand/src/lib.rs"
        ));
        assert!(glob::matches_any(
            &cfg.files_exclude,
            "crates/lint/tests/fixtures/bad_d001.rs"
        ));
    }

    #[test]
    fn report_json_escapes_and_carries_the_tally() {
        let (violations, _) = check_source(
            "crates/core/src/gather.rs",
            "fn f() { let t = std::time::Instant::now(); } // \"quoted\"\n",
            &default_config(),
        );
        let mut report = Report {
            violations,
            suppressions: BTreeMap::new(),
            files_checked: 1,
        };
        report.suppressions.insert("E002".to_string(), 3);
        let json = report_json(&report);
        assert!(json.contains("\"rule\": \"D001\""), "{json}");
        assert!(json.contains("\"line\": 1"), "{json}");
        assert!(json.contains("\"suppressions\": {\"E002\": 3}"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json_escape("a\"b\\c\nd").contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn check_source_end_to_end() {
        let (v, _) = check_source(
            "crates/core/src/gather.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
            &default_config(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "D001");
        assert_eq!(v[0].line, 1);
    }
}
