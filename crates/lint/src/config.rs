//! `lint.toml` — scoping the rule catalog to module globs.
//!
//! The checked-in `lint.toml` at the workspace root decides which files
//! each rule polices. This module parses the small TOML subset that file
//! uses (tables, string values, string arrays, `#` comments) with no
//! external dependency; anything fancier is a configuration error, loudly
//! reported rather than silently skipped.
//!
//! ```toml
//! [files]
//! include = ["crates/*/src/**/*.rs"]
//! exclude = ["vendor/**"]
//!
//! [rules.D003]
//! include = ["crates/multicomputer/src/engine.rs"]
//! ```
//!
//! A `[rules.X]` table *overrides* that rule's built-in default scope;
//! rules without a table keep their defaults (see [`crate::rules`]).

use std::collections::BTreeMap;

/// Scope override for one rule.
#[derive(Debug, Default, Clone)]
pub struct RuleScope {
    /// Globs a file must match for the rule to apply (empty = keep the
    /// rule's built-in include list).
    pub include: Vec<String>,
    /// Globs that exempt a file even when included.
    pub exclude: Vec<String>,
}

/// The parsed configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// Files the walker considers at all.
    pub files_include: Vec<String>,
    /// Files the walker skips unconditionally.
    pub files_exclude: Vec<String>,
    /// Per-rule scope overrides, keyed by rule ID.
    pub rules: BTreeMap<String, RuleScope>,
}

/// A configuration problem with its line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// Parse `lint.toml` text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: idx + 1,
                message: format!("expected `key = value` or `[section]`, got `{line}`"),
            });
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: accumulate until the closing bracket.
        while value.starts_with('[') && !value.ends_with(']') {
            match lines.next() {
                Some((_, more)) => {
                    value.push(' ');
                    value.push_str(strip_comment(more).trim());
                }
                None => {
                    return Err(ConfigError {
                        line: idx + 1,
                        message: "unterminated array".to_string(),
                    })
                }
            }
        }
        let values = parse_string_array(&value).map_err(|message| ConfigError {
            line: idx + 1,
            message,
        })?;
        match (section.as_str(), key) {
            ("files", "include") => cfg.files_include = values,
            ("files", "exclude") => cfg.files_exclude = values,
            (s, k) if s.starts_with("rules.") => {
                let rule = s["rules.".len()..].to_string();
                let scope = cfg.rules.entry(rule).or_default();
                match k {
                    "include" => scope.include = values,
                    "exclude" => scope.exclude = values,
                    other => {
                        return Err(ConfigError {
                            line: idx + 1,
                            message: format!("unknown rule key `{other}` (want include/exclude)"),
                        })
                    }
                }
            }
            (s, k) => {
                return Err(ConfigError {
                    line: idx + 1,
                    message: format!("unknown setting `{k}` in section `[{s}]`"),
                })
            }
        }
    }
    Ok(cfg)
}

/// Drop a trailing `#` comment (quote-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b"]` or a single `"a"` into a vector of strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    let inner = if let Some(i) = value.strip_prefix('[') {
        i.strip_suffix(']')
            .ok_or_else(|| "array missing `]`".to_string())?
    } else {
        value
    };
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_files_and_rule_scopes() {
        let cfg = parse(
            "# top comment\n[files]\ninclude = [\"src/**/*.rs\", \"crates/*/src/**/*.rs\"]\nexclude = [\"vendor/**\"] # inline\n\n[rules.W001]\nexclude = [\"crates/core/src/wire.rs\"]\n",
        )
        .expect("parses");
        assert_eq!(cfg.files_include.len(), 2);
        assert_eq!(cfg.files_exclude, vec!["vendor/**"]);
        assert_eq!(cfg.rules["W001"].exclude, vec!["crates/core/src/wire.rs"]);
        assert!(cfg.rules["W001"].include.is_empty());
    }

    #[test]
    fn multiline_arrays() {
        let cfg = parse("[files]\ninclude = [\n  \"a/**\",\n  \"b/**\",\n]\n").expect("parses");
        assert_eq!(cfg.files_include, vec!["a/**", "b/**"]);
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = parse("[files]\nfrobnicate = 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("[rules.E001]\nseverity = \"deny\"\n").unwrap_err();
        assert!(err.message.contains("severity"), "{err}");
    }
}
