//! A minimal `**`/`*` path-glob matcher.
//!
//! The lint configuration scopes rules to module globs
//! (`crates/core/src/**`, `crates/*/src/schemes/*.rs`, …). Pulling in the
//! `glob` crate would break the crate's dependency-free contract, and the
//! subset the config actually needs is small:
//!
//! * `**` matches zero or more whole path segments;
//! * `*` matches any run of characters within one segment;
//! * everything else matches literally.
//!
//! Paths are compared with `/` separators regardless of host platform
//! (callers normalise before matching).

/// True if `path` (a `/`-separated relative path) matches `pattern`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.split_first() {
        None => segs.is_empty(),
        Some((&"**", rest)) => {
            // `**` may swallow zero or more leading segments.
            (0..=segs.len()).any(|skip| match_segments(rest, &segs[skip..]))
        }
        Some((first, rest)) => match segs.split_first() {
            None => false,
            Some((seg, seg_rest)) => match_segment(first, seg) && match_segments(rest, seg_rest),
        },
    }
}

/// Match one path segment against one pattern segment (`*` wildcards).
fn match_segment(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    match_chars(&p, &s)
}

fn match_chars(pat: &[char], seg: &[char]) -> bool {
    match pat.split_first() {
        None => seg.is_empty(),
        Some(('*', rest)) => (0..=seg.len()).any(|skip| match_chars(rest, &seg[skip..])),
        Some((c, rest)) => match seg.split_first() {
            Some((sc, seg_rest)) if sc == c => match_chars(rest, seg_rest),
            _ => false,
        },
    }
}

/// True if `path` matches any pattern in `patterns`.
pub fn matches_any(patterns: &[String], path: &str) -> bool {
    patterns.iter().any(|p| glob_match(p, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star() {
        assert!(glob_match("src/lib.rs", "src/lib.rs"));
        assert!(!glob_match("src/lib.rs", "src/main.rs"));
        assert!(glob_match("src/*.rs", "src/lib.rs"));
        assert!(!glob_match("src/*.rs", "src/sub/lib.rs"));
        assert!(glob_match("crates/*/src/*.rs", "crates/core/src/wire.rs"));
    }

    #[test]
    fn double_star_spans_segments() {
        assert!(glob_match("crates/core/src/**", "crates/core/src/wire.rs"));
        assert!(glob_match(
            "crates/core/src/**",
            "crates/core/src/schemes/cfs.rs"
        ));
        assert!(!glob_match("crates/core/src/**", "crates/cli/src/main.rs"));
        assert!(glob_match("**/*.rs", "a/b/c/d.rs"));
        assert!(glob_match("**/*.rs", "d.rs"));
        assert!(!glob_match("**/*.rs", "d.txt"));
    }

    #[test]
    fn star_within_segment() {
        assert!(glob_match(
            "crates/*/src/**/*.rs",
            "crates/multicomputer/src/engine.rs"
        ));
        assert!(glob_match(
            "crates/core/src/schemes/*.rs",
            "crates/core/src/schemes/ed.rs"
        ));
        assert!(!glob_match(
            "crates/core/src/schemes/*.rs",
            "crates/core/src/wire.rs"
        ));
    }

    #[test]
    fn empty_and_edge_cases() {
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("*", "one"));
        assert!(!glob_match("*", "two/segments"));
    }
}
