//! `--audit-vendor`: keep the offline dependency story honest.
//!
//! The workspace builds with no registry access: every external
//! dependency is a same-named shim crate under `vendor/`. That contract
//! can rot in two directions —
//!
//! * someone adds a registry/git dependency that CI cannot fetch, or
//! * a vendored shim drifts from (or disappears behind) `Cargo.lock`.
//!
//! This audit cross-checks three sources of truth: `Cargo.lock` package
//! entries, the `vendor/*/Cargo.toml` manifests, and the workspace's own
//! member manifests. Any mismatch is a finding with the same exit-code
//! discipline as the lint pass.

use std::fs;
use std::path::Path;

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// What is wrong, with names and versions spelled out.
    pub message: String,
}

/// A `[[package]]` entry from `Cargo.lock`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LockPackage {
    name: String,
    version: String,
    /// `Some` for registry/git packages; `None` for path (workspace or
    /// vendored) packages.
    source: Option<String>,
}

/// Parse the `[[package]]` blocks out of a `Cargo.lock`.
fn parse_lock(text: &str) -> Vec<LockPackage> {
    let mut out = Vec::new();
    let mut cur: Option<LockPackage> = None;
    for line in text.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            if let Some(p) = cur.take() {
                out.push(p);
            }
            cur = Some(LockPackage {
                name: String::new(),
                version: String::new(),
                source: None,
            });
            continue;
        }
        let Some(p) = cur.as_mut() else { continue };
        if let Some(v) = toml_str_value(line, "name") {
            p.name = v;
        } else if let Some(v) = toml_str_value(line, "version") {
            p.version = v;
        } else if let Some(v) = toml_str_value(line, "source") {
            p.source = Some(v);
        }
    }
    if let Some(p) = cur.take() {
        out.push(p);
    }
    out.retain(|p| !p.name.is_empty());
    out
}

/// Extract `key = "value"` from a single TOML line.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start().strip_prefix('=')?;
    let rest = rest.trim();
    rest.strip_prefix('"')
        .and_then(|r| r.split('"').next())
        .map(|s| s.to_string())
}

/// Read `[package] name`/`version` from a manifest (either may be
/// workspace-inherited, in which case it is reported as `None`).
fn manifest_name_version(path: &Path) -> Option<(String, Option<String>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut in_package = false;
    let mut name = None;
    let mut version = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(v) = toml_str_value(line, "name") {
            name = Some(v);
        } else if let Some(v) = toml_str_value(line, "version") {
            version = Some(v);
        }
    }
    name.map(|n| (n, version))
}

/// List the package names (and explicit versions) of the manifests in
/// the immediate subdirectories of `dir`.
fn member_manifests(dir: &Path) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if let Some(nv) = manifest_name_version(&p.join("Cargo.toml")) {
            out.push(nv);
        }
    }
    out
}

/// Run the audit against a workspace root. Returns findings (empty =
/// healthy).
pub fn audit(root: &Path) -> Result<Vec<AuditFinding>, String> {
    let lock_text = fs::read_to_string(root.join("Cargo.lock"))
        .map_err(|e| format!("cannot read Cargo.lock: {e}"))?;
    let lock = parse_lock(&lock_text);
    let mut findings = Vec::new();

    // 1. Nothing in the lockfile may come from a registry or git source:
    //    the build environment cannot fetch it.
    for p in &lock {
        if let Some(src) = &p.source {
            findings.push(AuditFinding {
                message: format!(
                    "{} v{} resolves to external source `{src}` — vendor it under vendor/ (offline CI cannot fetch)",
                    p.name, p.version
                ),
            });
        }
    }

    // Workspace-local packages: root, crates/*, vendor/*.
    let mut local: Vec<(String, Option<String>)> = Vec::new();
    if let Some(nv) = manifest_name_version(&root.join("Cargo.toml")) {
        local.push(nv);
    }
    local.extend(member_manifests(&root.join("crates")));
    let vendored = member_manifests(&root.join("vendor"));
    local.extend(vendored.iter().cloned());

    // 2. Every vendored shim must be what the lockfile resolved: same
    //    name, same version. A version skew means the shim is stale.
    for (name, version) in &vendored {
        match lock.iter().find(|p| &p.name == name) {
            None => findings.push(AuditFinding {
                message: format!(
                    "vendor/{name} is not in Cargo.lock — dead vendor copy or renamed crate"
                ),
            }),
            Some(p) => {
                if let Some(v) = version {
                    if v != &p.version {
                        findings.push(AuditFinding {
                            message: format!(
                                "vendor/{name} is v{v} but Cargo.lock resolved v{} — stale vendor copy",
                                p.version
                            ),
                        });
                    }
                }
            }
        }
    }

    // 3. Every path-resolved lockfile entry must exist in the workspace
    //    (root package, crates/* or vendor/*).
    for p in lock.iter().filter(|p| p.source.is_none()) {
        if !local.iter().any(|(n, _)| n == &p.name) {
            findings.push(AuditFinding {
                message: format!(
                    "Cargo.lock entry {} v{} has no matching workspace or vendor/ manifest",
                    p.name, p.version
                ),
            });
        }
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_parsing_extracts_name_version_source() {
        let lock = "version = 4\n\n[[package]]\nname = \"rand\"\nversion = \"0.10.99\"\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let pkgs = parse_lock(lock);
        assert_eq!(pkgs.len(), 2);
        assert_eq!(pkgs[0].name, "rand");
        assert_eq!(pkgs[0].source, None);
        assert_eq!(pkgs[1].name, "serde");
        assert!(pkgs[1]
            .source
            .as_deref()
            .unwrap_or("")
            .starts_with("registry"));
    }

    #[test]
    fn toml_str_value_ignores_other_keys() {
        assert_eq!(toml_str_value("name = \"x\"", "name").as_deref(), Some("x"));
        assert_eq!(toml_str_value("rename = \"x\"", "name"), None);
        assert_eq!(toml_str_value("name = 3", "name"), None);
    }
}
