//! `--audit-vendor`: keep the offline dependency story honest.
//!
//! The workspace builds with no registry access: every external
//! dependency is a same-named shim crate under `vendor/`. That contract
//! can rot in two directions —
//!
//! * someone adds a registry/git dependency that CI cannot fetch, or
//! * a vendored shim drifts from (or disappears behind) `Cargo.lock`.
//!
//! This audit cross-checks four sources of truth: `Cargo.lock` package
//! entries, the `vendor/*/Cargo.toml` manifests, the workspace's own
//! member manifests, and `vendor/CHECKSUMS.toml` — a committed content
//! digest per vendored crate. Any mismatch is a finding with the same
//! exit-code discipline as the lint pass.
//!
//! # Content checksums
//!
//! Cargo records a registry `checksum` per `[[package]]`, but path
//! dependencies (which is what every vendored shim is) carry none — so
//! name/version agreement alone cannot detect a *tampered or drifted*
//! vendor tree. [`crate_digest`] closes that hole: a deterministic
//! FNV-1a-64 digest over every file in `vendor/<name>/` (sorted relative
//! paths, length-prefixed contents), pinned in `vendor/CHECKSUMS.toml`
//! and regenerated with `sparsedist-lint --write-vendor-checksums`. If a
//! lockfile entry ever *does* carry a registry `checksum`, the audit
//! cross-checks it against the pin as well.

use std::fs;
use std::path::Path;

/// The committed digest pin file, relative to the workspace root.
pub const CHECKSUMS_FILE: &str = "vendor/CHECKSUMS.toml";

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// What is wrong, with names and versions spelled out.
    pub message: String,
}

/// A `[[package]]` entry from `Cargo.lock`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LockPackage {
    name: String,
    version: String,
    /// `Some` for registry/git packages; `None` for path (workspace or
    /// vendored) packages.
    source: Option<String>,
    /// Registry content hash, when the lockfile carries one.
    checksum: Option<String>,
}

/// Parse the `[[package]]` blocks out of a `Cargo.lock`.
fn parse_lock(text: &str) -> Vec<LockPackage> {
    let mut out = Vec::new();
    let mut cur: Option<LockPackage> = None;
    for line in text.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            if let Some(p) = cur.take() {
                out.push(p);
            }
            cur = Some(LockPackage {
                name: String::new(),
                version: String::new(),
                source: None,
                checksum: None,
            });
            continue;
        }
        let Some(p) = cur.as_mut() else { continue };
        if let Some(v) = toml_str_value(line, "name") {
            p.name = v;
        } else if let Some(v) = toml_str_value(line, "version") {
            p.version = v;
        } else if let Some(v) = toml_str_value(line, "source") {
            p.source = Some(v);
        } else if let Some(v) = toml_str_value(line, "checksum") {
            p.checksum = Some(v);
        }
    }
    if let Some(p) = cur.take() {
        out.push(p);
    }
    out.retain(|p| !p.name.is_empty());
    out
}

/// Extract `key = "value"` from a single TOML line.
fn toml_str_value(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start().strip_prefix('=')?;
    let rest = rest.trim();
    rest.strip_prefix('"')
        .and_then(|r| r.split('"').next())
        .map(|s| s.to_string())
}

/// Read `[package] name`/`version` from a manifest (either may be
/// workspace-inherited, in which case it is reported as `None`).
fn manifest_name_version(path: &Path) -> Option<(String, Option<String>)> {
    let text = fs::read_to_string(path).ok()?;
    let mut in_package = false;
    let mut name = None;
    let mut version = None;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(v) = toml_str_value(line, "name") {
            name = Some(v);
        } else if let Some(v) = toml_str_value(line, "version") {
            version = Some(v);
        }
    }
    name.map(|n| (n, version))
}

/// List the package names (and explicit versions) of the manifests in
/// the immediate subdirectories of `dir`.
fn member_manifests(dir: &Path) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if let Some(nv) = manifest_name_version(&p.join("Cargo.toml")) {
            out.push(nv);
        }
    }
    out
}

/// Deterministic FNV-1a-64 content digest of a vendored crate directory:
/// every file, in sorted relative-path order, hashed as
/// `path bytes · 0x00 · u64-LE length · contents`.
pub fn crate_digest(dir: &Path) -> Result<String, String> {
    let mut files = Vec::new();
    collect_rel_files(dir, Path::new(""), &mut files)?;
    files.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for rel in &files {
        let bytes = fs::read(dir.join(rel))
            .map_err(|e| format!("cannot read {}: {e}", dir.join(rel).display()))?;
        eat(rel.as_bytes());
        eat(&[0]);
        eat(&u64::try_from(bytes.len()).unwrap_or(u64::MAX).to_le_bytes());
        eat(&bytes);
    }
    Ok(format!("fnv1a64:{h:016x}"))
}

/// Collect `/`-separated relative file paths under `dir`, recursively.
fn collect_rel_files(dir: &Path, rel: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let here = dir.join(rel);
    let entries =
        fs::read_dir(&here).map_err(|e| format!("cannot list {}: {e}", here.display()))?;
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let Some(name) = p.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let child = rel.join(&name);
        if p.is_dir() {
            collect_rel_files(dir, &child, out)?;
        } else {
            out.push(
                child
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/"),
            );
        }
    }
    Ok(())
}

/// One pinned entry from `vendor/CHECKSUMS.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumPin {
    /// Vendored crate name (the `vendor/<name>` directory).
    pub name: String,
    /// The version the pin was taken at (must match Cargo.lock).
    pub version: String,
    /// `fnv1a64:…` content digest from [`crate_digest`].
    pub checksum: String,
}

/// Parse `vendor/CHECKSUMS.toml` (`[[vendor]]` blocks).
pub fn parse_checksums(text: &str) -> Vec<ChecksumPin> {
    let mut out = Vec::new();
    let mut cur: Option<ChecksumPin> = None;
    for line in text.lines() {
        let line = line.trim();
        if line == "[[vendor]]" {
            if let Some(p) = cur.take() {
                out.push(p);
            }
            cur = Some(ChecksumPin {
                name: String::new(),
                version: String::new(),
                checksum: String::new(),
            });
            continue;
        }
        let Some(p) = cur.as_mut() else { continue };
        if let Some(v) = toml_str_value(line, "name") {
            p.name = v;
        } else if let Some(v) = toml_str_value(line, "version") {
            p.version = v;
        } else if let Some(v) = toml_str_value(line, "checksum") {
            p.checksum = v;
        }
    }
    if let Some(p) = cur.take() {
        out.push(p);
    }
    out.retain(|p| !p.name.is_empty());
    out
}

/// Render the pin file for the current `vendor/` tree and `Cargo.lock`.
pub fn render_checksums(root: &Path) -> Result<String, String> {
    let lock_text = fs::read_to_string(root.join("Cargo.lock"))
        .map_err(|e| format!("cannot read Cargo.lock: {e}"))?;
    let lock = parse_lock(&lock_text);
    let mut out = String::from(
        "# Content digests of the vendored offline shims, one per\n\
         # vendor/<name> directory. Verified by `sparsedist-lint\n\
         # --audit-vendor`; regenerate with --write-vendor-checksums\n\
         # after any intentional vendor change.\n",
    );
    for (name, version) in member_manifests(&root.join("vendor")) {
        let digest = crate_digest(&root.join("vendor").join(&name))?;
        let version = version
            .or_else(|| {
                lock.iter()
                    .find(|p| p.name == name)
                    .map(|p| p.version.clone())
            })
            .unwrap_or_default();
        out.push_str(&format!(
            "\n[[vendor]]\nname = \"{name}\"\nversion = \"{version}\"\nchecksum = \"{digest}\"\n"
        ));
    }
    Ok(out)
}

/// Write `vendor/CHECKSUMS.toml`; returns the path written.
pub fn write_checksums(root: &Path) -> Result<String, String> {
    let rendered = render_checksums(root)?;
    let path = root.join(CHECKSUMS_FILE);
    fs::write(&path, rendered).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path.display().to_string())
}

/// Run the audit against a workspace root. Returns findings (empty =
/// healthy).
pub fn audit(root: &Path) -> Result<Vec<AuditFinding>, String> {
    let lock_text = fs::read_to_string(root.join("Cargo.lock"))
        .map_err(|e| format!("cannot read Cargo.lock: {e}"))?;
    let lock = parse_lock(&lock_text);
    let mut findings = Vec::new();

    // 1. Nothing in the lockfile may come from a registry or git source:
    //    the build environment cannot fetch it.
    for p in &lock {
        if let Some(src) = &p.source {
            findings.push(AuditFinding {
                message: format!(
                    "{} v{} resolves to external source `{src}` — vendor it under vendor/ (offline CI cannot fetch)",
                    p.name, p.version
                ),
            });
        }
    }

    // Workspace-local packages: root, crates/*, vendor/*.
    let mut local: Vec<(String, Option<String>)> = Vec::new();
    if let Some(nv) = manifest_name_version(&root.join("Cargo.toml")) {
        local.push(nv);
    }
    local.extend(member_manifests(&root.join("crates")));
    let vendored = member_manifests(&root.join("vendor"));
    local.extend(vendored.iter().cloned());

    // 2. Every vendored shim must be what the lockfile resolved: same
    //    name, same version. A version skew means the shim is stale.
    for (name, version) in &vendored {
        match lock.iter().find(|p| &p.name == name) {
            None => findings.push(AuditFinding {
                message: format!(
                    "vendor/{name} is not in Cargo.lock — dead vendor copy or renamed crate"
                ),
            }),
            Some(p) => {
                if let Some(v) = version {
                    if v != &p.version {
                        findings.push(AuditFinding {
                            message: format!(
                                "vendor/{name} is v{v} but Cargo.lock resolved v{} — stale vendor copy",
                                p.version
                            ),
                        });
                    }
                }
            }
        }
    }

    // 3. Every path-resolved lockfile entry must exist in the workspace
    //    (root package, crates/* or vendor/*).
    for p in lock.iter().filter(|p| p.source.is_none()) {
        if !local.iter().any(|(n, _)| n == &p.name) {
            findings.push(AuditFinding {
                message: format!(
                    "Cargo.lock entry {} v{} has no matching workspace or vendor/ manifest",
                    p.name, p.version
                ),
            });
        }
    }

    // 4. Content verification: every vendored crate's bytes must match
    //    the committed pin, and the pin's version must be what the
    //    lockfile resolved — name/version agreement alone cannot catch a
    //    tampered or drifted shim.
    let pins = match fs::read_to_string(root.join(CHECKSUMS_FILE)) {
        Ok(text) => parse_checksums(&text),
        Err(e) => {
            findings.push(AuditFinding {
                message: format!(
                    "{CHECKSUMS_FILE} is missing ({e}) — run `sparsedist-lint --write-vendor-checksums`"
                ),
            });
            Vec::new()
        }
    };
    if !pins.is_empty() {
        for (name, _) in &vendored {
            let Some(pin) = pins.iter().find(|p| &p.name == name) else {
                findings.push(AuditFinding {
                    message: format!(
                        "vendor/{name} has no entry in {CHECKSUMS_FILE} — unpinned vendor content"
                    ),
                });
                continue;
            };
            let digest = crate_digest(&root.join("vendor").join(name))?;
            if digest != pin.checksum {
                findings.push(AuditFinding {
                    message: format!(
                        "vendor/{name} content digest {digest} does not match pinned {} — vendor tree modified without re-pinning",
                        pin.checksum
                    ),
                });
            }
            if let Some(lockp) = lock.iter().find(|p| &p.name == name) {
                if lockp.version != pin.version {
                    findings.push(AuditFinding {
                        message: format!(
                            "{CHECKSUMS_FILE} pins {name} v{} but Cargo.lock resolved v{} — stale pin",
                            pin.version, lockp.version
                        ),
                    });
                }
                // Registry checksums, when present, are a second source
                // of truth the pin must agree with.
                if let Some(lock_sum) = &lockp.checksum {
                    if lock_sum != &pin.checksum && !pin.checksum.starts_with("fnv1a64:") {
                        findings.push(AuditFinding {
                            message: format!(
                                "{CHECKSUMS_FILE} pins {name} checksum {} but Cargo.lock records {lock_sum}",
                                pin.checksum
                            ),
                        });
                    }
                }
            }
        }
        for pin in &pins {
            if !vendored.iter().any(|(n, _)| n == &pin.name) {
                findings.push(AuditFinding {
                    message: format!(
                        "{CHECKSUMS_FILE} pins {} but vendor/{} does not exist — dead pin",
                        pin.name, pin.name
                    ),
                });
            }
        }
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_parsing_extracts_name_version_source() {
        let lock = "version = 4\n\n[[package]]\nname = \"rand\"\nversion = \"0.10.99\"\n\n[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let pkgs = parse_lock(lock);
        assert_eq!(pkgs.len(), 2);
        assert_eq!(pkgs[0].name, "rand");
        assert_eq!(pkgs[0].source, None);
        assert_eq!(pkgs[1].name, "serde");
        assert!(pkgs[1]
            .source
            .as_deref()
            .unwrap_or("")
            .starts_with("registry"));
    }

    #[test]
    fn toml_str_value_ignores_other_keys() {
        assert_eq!(toml_str_value("name = \"x\"", "name").as_deref(), Some("x"));
        assert_eq!(toml_str_value("rename = \"x\"", "name"), None);
        assert_eq!(toml_str_value("name = 3", "name"), None);
    }

    #[test]
    fn lock_parsing_extracts_registry_checksums() {
        let lock = "[[package]]\nname = \"serde\"\nversion = \"1.0.0\"\nsource = \"registry+x\"\nchecksum = \"abc123\"\n";
        let pkgs = parse_lock(lock);
        assert_eq!(pkgs[0].checksum.as_deref(), Some("abc123"));
    }

    #[test]
    fn checksum_pins_round_trip() {
        let text = "# header\n\n[[vendor]]\nname = \"rand\"\nversion = \"0.10.99\"\nchecksum = \"fnv1a64:00ff\"\n";
        let pins = parse_checksums(text);
        assert_eq!(
            pins,
            vec![ChecksumPin {
                name: "rand".to_string(),
                version: "0.10.99".to_string(),
                checksum: "fnv1a64:00ff".to_string(),
            }]
        );
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sparsedist-lint-vendor-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("src")).expect("mkdir");
        dir
    }

    #[test]
    fn crate_digest_is_deterministic_and_content_sensitive() {
        let dir = scratch_dir("digest");
        fs::write(dir.join("Cargo.toml"), "[package]\nname = \"x\"\n").expect("write");
        fs::write(dir.join("src/lib.rs"), "pub fn f() {}\n").expect("write");
        let d1 = crate_digest(&dir).expect("digest");
        let d2 = crate_digest(&dir).expect("digest");
        assert_eq!(d1, d2, "same bytes, same digest");
        assert!(d1.starts_with("fnv1a64:"), "{d1}");
        // One flipped byte changes the digest (tamper detection)…
        fs::write(dir.join("src/lib.rs"), "pub fn f() {}!\n").expect("write");
        assert_ne!(crate_digest(&dir).expect("digest"), d1);
        // …and so does an extra file, even with the original restored.
        fs::write(dir.join("src/lib.rs"), "pub fn f() {}\n").expect("write");
        fs::write(dir.join("src/extra.rs"), "").expect("write");
        assert_ne!(crate_digest(&dir).expect("digest"), d1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_flags_tampered_vendor_content() {
        // A miniature workspace: one vendored crate, lockfile, and pins.
        let root = scratch_dir("audit");
        fs::create_dir_all(root.join("vendor/tiny/src")).expect("mkdir");
        fs::write(
            root.join("vendor/tiny/Cargo.toml"),
            "[package]\nname = \"tiny\"\nversion = \"1.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("vendor/tiny/src/lib.rs"), "pub fn t() {}\n").expect("write");
        fs::write(
            root.join("Cargo.toml"),
            "[package]\nname = \"ws\"\nversion = \"0.1.0\"\n",
        )
        .expect("write");
        fs::write(
            root.join("Cargo.lock"),
            "version = 4\n\n[[package]]\nname = \"ws\"\nversion = \"0.1.0\"\n\n[[package]]\nname = \"tiny\"\nversion = \"1.0.0\"\n",
        )
        .expect("write");
        write_checksums(&root).expect("pin");
        assert_eq!(
            audit(&root).expect("audit"),
            vec![],
            "freshly pinned tree is clean"
        );
        // Tamper with the vendored source: the digest catches it even
        // though name and version still agree everywhere.
        fs::write(root.join("vendor/tiny/src/lib.rs"), "pub fn evil() {}\n").expect("write");
        let findings = audit(&root).expect("audit");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("content digest") && f.message.contains("tiny")),
            "{findings:?}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn audit_flags_missing_pin_file_and_dead_pins() {
        let root = scratch_dir("pins");
        fs::create_dir_all(root.join("vendor/tiny")).expect("mkdir");
        fs::write(
            root.join("vendor/tiny/Cargo.toml"),
            "[package]\nname = \"tiny\"\nversion = \"1.0.0\"\n",
        )
        .expect("write");
        fs::write(
            root.join("Cargo.lock"),
            "version = 4\n\n[[package]]\nname = \"tiny\"\nversion = \"1.0.0\"\n",
        )
        .expect("write");
        let findings = audit(&root).expect("audit");
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("CHECKSUMS.toml is missing")),
            "{findings:?}"
        );
        fs::write(
            root.join(CHECKSUMS_FILE),
            "[[vendor]]\nname = \"tiny\"\nversion = \"1.0.0\"\nchecksum = \"fnv1a64:deadbeefdeadbeef\"\n\n[[vendor]]\nname = \"ghost\"\nversion = \"9.9.9\"\nchecksum = \"fnv1a64:0\"\n",
        )
        .expect("write");
        let findings = audit(&root).expect("audit");
        assert!(
            findings.iter().any(|f| f.message.contains("dead pin")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("content digest")),
            "{findings:?}"
        );
        let _ = fs::remove_dir_all(&root);
    }
}
