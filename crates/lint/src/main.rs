//! CLI entry point for `sparsedist-lint`.
//!
//! ```text
//! cargo run -p sparsedist-lint                # lint the workspace
//! cargo run -p sparsedist-lint -- --rules     # print the rule catalog
//! cargo run -p sparsedist-lint -- --audit-vendor
//! cargo run -p sparsedist-lint -- --write-vendor-checksums
//! cargo run -p sparsedist-lint -- --root PATH --quiet --format json
//! ```
//!
//! Exit codes: 0 clean, 1 violations/audit findings, 2 usage or
//! configuration errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    audit_vendor: bool,
    write_checksums: bool,
    list_rules: bool,
    quiet: bool,
    format: Format,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        audit_vendor: false,
        write_checksums: false,
        list_rules: false,
        quiet: false,
        format: Format::Text,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--audit-vendor" => args.audit_vendor = true,
            "--write-vendor-checksums" => args.write_checksums = true,
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format wants `text` or `json`, got {other:?}")),
                };
            }
            "--rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--help" | "-h" => {
                println!(
                    "sparsedist-lint: repo-invariant static analysis\n\n\
                     USAGE: sparsedist-lint [--root PATH] [--quiet] [--format text|json]\n\
                            [--rules] [--audit-vendor] [--write-vendor-checksums]\n\n\
                     Default mode lints every first-party .rs file per lint.toml.\n\
                     --rules            print the rule catalog and exit\n\
                     --audit-vendor     cross-check vendor/ (incl. content digests) against\n\
                                        Cargo.lock and vendor/CHECKSUMS.toml instead of linting\n\
                     --write-vendor-checksums  re-pin vendor/CHECKSUMS.toml and exit\n\
                     --format text|json lint output format (json is machine-readable)\n\
                     --quiet            suppress per-violation source context\n\
                     --root PATH        workspace root (default: current directory)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sparsedist-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in sparsedist_lint::rules::RULES {
            println!("{}  {}", rule.id, rule.summary);
            println!("      fix: {}", rule.hint);
        }
        return ExitCode::SUCCESS;
    }

    if args.write_checksums {
        return match sparsedist_lint::vendor::write_checksums(&args.root) {
            Ok(path) => {
                println!("vendor checksums: pinned to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sparsedist-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    if args.audit_vendor {
        return match sparsedist_lint::vendor::audit(&args.root) {
            Ok(findings) if findings.is_empty() => {
                println!("vendor audit: vendor/ and Cargo.lock agree; no external sources");
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for f in &findings {
                    eprintln!("vendor audit: {}", f.message);
                }
                eprintln!("vendor audit: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("sparsedist-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let cfg = match sparsedist_lint::load_config(&args.root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sparsedist-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match sparsedist_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sparsedist-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if matches!(args.format, Format::Json) {
        print!("{}", sparsedist_lint::report_json(&report));
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &report.violations {
        if args.quiet {
            println!("{}:{}: {} {}", v.path, v.line, v.rule, v.message);
        } else {
            println!("{v}\n");
        }
    }

    // Suppression accounting — always printed so the CI job summary can
    // surface it (the determinism contract includes knowing how many
    // holes were punched in it, and why each one is written down).
    if report.suppressions.is_empty() {
        println!("suppressions: none");
    } else {
        let per_rule: Vec<String> = report
            .suppressions
            .iter()
            .map(|(rule, n)| format!("{rule}={n}"))
            .collect();
        println!(
            "suppressions: {} total ({})",
            report.suppression_total(),
            per_rule.join(", ")
        );
    }

    if report.is_clean() {
        println!("lint: {} files clean", report.files_checked);
        ExitCode::SUCCESS
    } else {
        println!(
            "lint: {} violation(s) across {} files",
            report.violations.len(),
            report.files_checked
        );
        ExitCode::FAILURE
    }
}
