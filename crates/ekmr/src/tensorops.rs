//! Tensor–vector contractions on the EKMR plane.
//!
//! The point of the EKMR representation (and of the Lin/Liu/Chung line of
//! work the paper's §6 cites) is that multi-dimensional array operations
//! become flat 2-D traversals — no `d−2` levels of indirection. The
//! mode-`m` tensor–vector product (TTV) of a 3-D sparse array,
//!
//! ```text
//! mode 1:  y[j][k] = Σ_i A[i][j][k] · x[i]
//! mode 2:  y[i][k] = Σ_j A[i][j][k] · x[j]
//! mode 3:  y[i][j] = Σ_k A[i][j][k] · x[k]
//! ```
//!
//! runs here as a single sweep over the compressed EKMR plane: each stored
//! plane nonzero `(r, c, v)` decodes to `(i, j, k) = (c mod n1, r, c div
//! n1)` arithmetically and contributes one multiply–add.

use crate::sparse3::{Ekmr3, Sparse3D};
use sparsedist_core::compress::Crs;
use sparsedist_core::dense::Dense2D;
use sparsedist_core::opcount::OpCounter;

/// Which mode a TTV contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Contract the first index `i`.
    One,
    /// Contract the second index `j`.
    Two,
    /// Contract the third index `k`.
    Three,
}

impl Mode {
    fn x_len(self, dims: (usize, usize, usize)) -> usize {
        match self {
            Mode::One => dims.0,
            Mode::Two => dims.1,
            Mode::Three => dims.2,
        }
    }

    fn out_shape(self, dims: (usize, usize, usize)) -> (usize, usize) {
        match self {
            Mode::One => (dims.1, dims.2),
            Mode::Two => (dims.0, dims.2),
            Mode::Three => (dims.0, dims.1),
        }
    }
}

/// Mode-`m` tensor–vector product over the compressed EKMR plane.
///
/// The plane is compressed to CRS once and swept once; the result is a
/// dense matrix over the two uncontracted modes.
///
/// # Panics
/// Panics if `x` does not match the contracted dimension.
pub fn ttv(a: &Ekmr3, mode: Mode, x: &[f64]) -> Dense2D {
    let dims = a.dims();
    assert_eq!(
        x.len(),
        mode.x_len(dims),
        "x length {} != contracted dimension {}",
        x.len(),
        mode.x_len(dims)
    );
    let (n1, _, _) = dims;
    let plane = Crs::from_dense(a.plane(), &mut OpCounter::new());
    let (or, oc) = mode.out_shape(dims);
    let mut y = Dense2D::zeros(or, oc);
    for (r, c, v) in plane.iter() {
        let (i, j, k) = (c % n1, r, c / n1);
        match mode {
            Mode::One => y.set(j, k, y.get(j, k) + v * x[i]),
            Mode::Two => y.set(i, k, y.get(i, k) + v * x[j]),
            Mode::Three => y.set(i, j, y.get(i, j) + v * x[k]),
        }
    }
    y
}

/// Reference implementation straight off the coordinate map (used by tests
/// and available for validation).
pub fn ttv_reference(a: &Sparse3D, mode: Mode, x: &[f64]) -> Dense2D {
    let dims = a.shape();
    assert_eq!(x.len(), mode.x_len(dims), "x length mismatch");
    let (or, oc) = mode.out_shape(dims);
    let mut y = Dense2D::zeros(or, oc);
    for ((i, j, k), v) in a.iter() {
        match mode {
            Mode::One => y.set(j, k, y.get(j, k) + v * x[i]),
            Mode::Two => y.set(i, k, y.get(i, k) + v * x[j]),
            Mode::Three => y.set(i, j, y.get(i, j) + v * x[k]),
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sparse3D {
        let mut a = Sparse3D::new(4, 5, 6);
        for t in 0..40 {
            a.set(t % 4, (t * 3) % 5, (t * 7) % 6, 1.0 + t as f64);
        }
        a
    }

    #[test]
    fn plane_ttv_matches_reference_every_mode() {
        let a = sample();
        let e = a.to_ekmr();
        for (mode, len) in [(Mode::One, 4), (Mode::Two, 5), (Mode::Three, 6)] {
            let x: Vec<f64> = (0..len).map(|i| 1.0 + (i as f64) * 0.5).collect();
            let got = ttv(&e, mode, &x);
            let want = ttv_reference(&a, mode, &x);
            assert_eq!(got, want, "{mode:?}");
        }
    }

    #[test]
    fn mode2_known_small_case() {
        // A[0][0][0] = 2, A[0][1][0] = 3 → y[0][0] = 2·x0 + 3·x1.
        let mut a = Sparse3D::new(1, 2, 1);
        a.set(0, 0, 0, 2.0);
        a.set(0, 1, 0, 3.0);
        let y = ttv(&a.to_ekmr(), Mode::Two, &[10.0, 100.0]);
        assert_eq!(y.get(0, 0), 320.0);
    }

    #[test]
    fn output_shapes() {
        let e = Sparse3D::new(4, 5, 6).to_ekmr();
        assert_eq!(ttv(&e, Mode::One, &[0.0; 4]).rows(), 5);
        assert_eq!(ttv(&e, Mode::One, &[0.0; 4]).cols(), 6);
        assert_eq!(ttv(&e, Mode::Two, &[0.0; 5]).rows(), 4);
        assert_eq!(ttv(&e, Mode::Three, &[0.0; 6]).cols(), 5);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_rejected() {
        let e = sample().to_ekmr();
        let _ = ttv(&e, Mode::One, &[1.0; 9]);
    }

    #[test]
    fn zero_tensor_gives_zero_output() {
        let e = Sparse3D::new(3, 3, 3).to_ekmr();
        let y = ttv(&e, Mode::Two, &[1.0; 3]);
        assert_eq!(y.nnz(), 0);
    }
}
