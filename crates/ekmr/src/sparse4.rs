//! Four-dimensional sparse arrays and their EKMR(4) plane.

use sparsedist_core::compress::CompressKind;
use sparsedist_core::dense::Dense2D;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::partition::Partition;
use sparsedist_core::schemes::{run_scheme, SchemeKind, SchemeRun};
use sparsedist_multicomputer::Multicomputer;
use std::collections::BTreeMap;

/// A 4-D sparse array `A[i][j][k][l]` stored as a coordinate map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sparse4D {
    n1: usize,
    n2: usize,
    n3: usize,
    n4: usize,
    entries: BTreeMap<(usize, usize, usize, usize), f64>,
}

impl Sparse4D {
    /// An empty `n1 × n2 × n3 × n4` array.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(n1: usize, n2: usize, n3: usize, n4: usize) -> Self {
        assert!(
            n1 > 0 && n2 > 0 && n3 > 0 && n4 > 0,
            "dimensions must be positive"
        );
        Sparse4D {
            n1,
            n2,
            n3,
            n4,
            entries: BTreeMap::new(),
        }
    }

    /// Dimensions `(n1, n2, n3, n4)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n1, self.n2, self.n3, self.n4)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Set `A[i][j][k][l]` (0.0 removes).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, i: usize, j: usize, k: usize, l: usize, v: f64) {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3 && l < self.n4,
            "({i},{j},{k},{l}) out of bounds"
        );
        if v == 0.0 {
            self.entries.remove(&(i, j, k, l));
        } else {
            self.entries.insert((i, j, k, l), v);
        }
    }

    /// Read `A[i][j][k][l]` (0.0 when absent).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize, k: usize, l: usize) -> f64 {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3 && l < self.n4,
            "({i},{j},{k},{l}) out of bounds"
        );
        self.entries.get(&(i, j, k, l)).copied().unwrap_or(0.0)
    }

    /// Flatten to the EKMR(4) plane: `A[i][j][k][l]` at plane cell
    /// `(l·n2 + j, k·n1 + i)`, shape `(n4·n2) × (n3·n1)`.
    pub fn to_ekmr(&self) -> Ekmr4 {
        let mut plane = Dense2D::zeros(self.n4 * self.n2, self.n3 * self.n1);
        for (&(i, j, k, l), &v) in &self.entries {
            plane.set(l * self.n2 + j, k * self.n1 + i, v);
        }
        Ekmr4 {
            n1: self.n1,
            n2: self.n2,
            n3: self.n3,
            n4: self.n4,
            plane,
        }
    }
}

/// The EKMR(4) plane of a 4-D sparse array.
#[derive(Debug, Clone, PartialEq)]
pub struct Ekmr4 {
    n1: usize,
    n2: usize,
    n3: usize,
    n4: usize,
    plane: Dense2D,
}

impl Ekmr4 {
    /// Original dimensions `(n1, n2, n3, n4)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n1, self.n2, self.n3, self.n4)
    }

    /// The flattened 2-D plane.
    pub fn plane(&self) -> &Dense2D {
        &self.plane
    }

    /// Plane coordinates of `A[i][j][k][l]`.
    pub fn plane_coords(&self, i: usize, j: usize, k: usize, l: usize) -> (usize, usize) {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3 && l < self.n4,
            "({i},{j},{k},{l}) out of bounds"
        );
        (l * self.n2 + j, k * self.n1 + i)
    }

    /// Inverse mapping for plane cell `(r, c)`.
    pub fn array_coords(&self, r: usize, c: usize) -> (usize, usize, usize, usize) {
        assert!(
            r < self.plane.rows() && c < self.plane.cols(),
            "({r},{c}) out of plane"
        );
        (c % self.n1, r % self.n2, c / self.n1, r / self.n2)
    }

    /// Reconstruct the coordinate-map form.
    pub fn to_sparse(&self) -> Sparse4D {
        let mut out = Sparse4D::new(self.n1, self.n2, self.n3, self.n4);
        for (r, c, v) in self.plane.iter_nonzero() {
            let (i, j, k, l) = self.array_coords(r, c);
            out.set(i, j, k, l, v);
        }
        out
    }
}

/// Distribute a 4-D sparse array over its EKMR(4) plane.
pub fn distribute4(
    scheme: SchemeKind,
    machine: &Multicomputer,
    a: &Sparse4D,
    part: &dyn Partition,
    kind: CompressKind,
) -> Result<SchemeRun, SparsedistError> {
    let ekmr = a.to_ekmr();
    run_scheme(scheme, machine, ekmr.plane(), part, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::partition::Mesh2D;
    use sparsedist_multicomputer::MachineModel;

    fn sample() -> Sparse4D {
        let mut a = Sparse4D::new(2, 3, 4, 5);
        a.set(0, 0, 0, 0, 1.0);
        a.set(1, 2, 3, 4, 2.0);
        a.set(0, 1, 2, 3, 3.0);
        a.set(1, 0, 3, 0, 4.0);
        a
    }

    #[test]
    fn plane_shape_and_mapping() {
        let a = sample();
        let e = a.to_ekmr();
        assert_eq!(e.plane().rows(), 15); // n4·n2 = 5·3
        assert_eq!(e.plane().cols(), 8); // n3·n1 = 4·2
                                         // A[1][2][3][4] → (4·3+2, 3·2+1) = (14, 7).
        assert_eq!(e.plane().get(14, 7), 2.0);
        assert_eq!(e.array_coords(14, 7), (1, 2, 3, 4));
    }

    #[test]
    fn round_trip() {
        let a = sample();
        assert_eq!(a.to_ekmr().to_sparse(), a);
    }

    #[test]
    fn plane_coords_bijective() {
        let e = Sparse4D::new(2, 3, 4, 5).to_ekmr();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    for l in 0..5 {
                        let rc = e.plane_coords(i, j, k, l);
                        assert!(seen.insert(rc));
                        assert_eq!(e.array_coords(rc.0, rc.1), (i, j, k, l));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 120);
    }

    #[test]
    fn distribute_over_mesh_reassembles() {
        let a = sample();
        let e = a.to_ekmr();
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let part = Mesh2D::new(15, 8, 2, 2);
        for scheme in SchemeKind::ALL {
            for kind in [CompressKind::Crs, CompressKind::Ccs] {
                let run = distribute4(scheme, &machine, &a, &part, kind).unwrap();
                assert_eq!(run.reassemble(&part), *e.plane(), "{scheme} {kind}");
            }
        }
    }

    #[test]
    fn set_zero_removes() {
        let mut a = sample();
        a.set(0, 0, 0, 0, 0.0);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0, 0, 0), 0.0);
    }
}
