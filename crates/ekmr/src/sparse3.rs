//! Three-dimensional sparse arrays and their EKMR(3) plane.

use sparsedist_core::compress::CompressKind;
use sparsedist_core::dense::Dense2D;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::partition::Partition;
use sparsedist_core::schemes::{run_scheme, SchemeKind, SchemeRun};
use sparsedist_multicomputer::Multicomputer;
use std::collections::BTreeMap;

/// A 3-D sparse array stored as a coordinate map (the "global" object a
/// multi-dimensional application holds before distribution).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sparse3D {
    n1: usize,
    n2: usize,
    n3: usize,
    entries: BTreeMap<(usize, usize, usize), f64>,
}

impl Sparse3D {
    /// An empty `n1 × n2 × n3` array (`A[i][j][k]`, `i < n1`, `j < n2`,
    /// `k < n3`).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1 > 0 && n2 > 0 && n3 > 0, "dimensions must be positive");
        Sparse3D {
            n1,
            n2,
            n3,
            entries: BTreeMap::new(),
        }
    }

    /// Dimensions `(n1, n2, n3)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.n1, self.n2, self.n3)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sparse ratio `nnz / (n1·n2·n3)`.
    pub fn sparse_ratio(&self) -> f64 {
        self.nnz() as f64 / (self.n1 * self.n2 * self.n3) as f64
    }

    /// Set `A[i][j][k]` (setting 0.0 removes the entry).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f64) {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3,
            "({i},{j},{k}) out of bounds"
        );
        if v == 0.0 {
            self.entries.remove(&(i, j, k));
        } else {
            self.entries.insert((i, j, k), v);
        }
    }

    /// Read `A[i][j][k]` (0.0 when absent).
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3,
            "({i},{j},{k}) out of bounds"
        );
        self.entries.get(&(i, j, k)).copied().unwrap_or(0.0)
    }

    /// Iterate stored `((i, j, k), value)` entries in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize, usize), f64)> + '_ {
        self.entries.iter().map(|(&ijk, &v)| (ijk, v))
    }

    /// Flatten to the EKMR(3) plane.
    pub fn to_ekmr(&self) -> Ekmr3 {
        let mut plane = Dense2D::zeros(self.n2, self.n3 * self.n1);
        for (&(i, j, k), &v) in &self.entries {
            plane.set(j, k * self.n1 + i, v);
        }
        Ekmr3 {
            n1: self.n1,
            n2: self.n2,
            n3: self.n3,
            plane,
        }
    }
}

/// The EKMR(3) plane of a 3-D sparse array: shape `n2 × (n3·n1)` with
/// `A[i][j][k]` at plane cell `(j, k·n1 + i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ekmr3 {
    n1: usize,
    n2: usize,
    n3: usize,
    plane: Dense2D,
}

impl Ekmr3 {
    /// Original dimensions `(n1, n2, n3)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n1, self.n2, self.n3)
    }

    /// The flattened 2-D plane (borrow it to run any `sparsedist-core`
    /// machinery directly).
    pub fn plane(&self) -> &Dense2D {
        &self.plane
    }

    /// Plane coordinates of `A[i][j][k]`.
    pub fn plane_coords(&self, i: usize, j: usize, k: usize) -> (usize, usize) {
        assert!(
            i < self.n1 && j < self.n2 && k < self.n3,
            "({i},{j},{k}) out of bounds"
        );
        (j, k * self.n1 + i)
    }

    /// Inverse mapping: the `(i, j, k)` stored at plane cell `(r, c)`.
    pub fn array_coords(&self, r: usize, c: usize) -> (usize, usize, usize) {
        assert!(
            r < self.plane.rows() && c < self.plane.cols(),
            "({r},{c}) out of plane"
        );
        (c % self.n1, r, c / self.n1)
    }

    /// Reconstruct the coordinate-map form.
    pub fn to_sparse(&self) -> Sparse3D {
        let mut out = Sparse3D::new(self.n1, self.n2, self.n3);
        for (r, c, v) in self.plane.iter_nonzero() {
            let (i, j, k) = self.array_coords(r, c);
            out.set(i, j, k, v);
        }
        out
    }
}

/// Distribute a 3-D sparse array: flatten to the EKMR(3) plane, then run
/// the chosen scheme over it. The partition must be built for the plane's
/// shape (`n2 × n3·n1`).
///
/// # Errors
/// Same failure modes as [`run_scheme`].
pub fn distribute3(
    scheme: SchemeKind,
    machine: &Multicomputer,
    a: &Sparse3D,
    part: &dyn Partition,
    kind: CompressKind,
) -> Result<SchemeRun, SparsedistError> {
    let ekmr = a.to_ekmr();
    run_scheme(scheme, machine, ekmr.plane(), part, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::partition::RowBlock;
    use sparsedist_multicomputer::MachineModel;

    fn sample() -> Sparse3D {
        let mut a = Sparse3D::new(3, 4, 5);
        a.set(0, 0, 0, 1.0);
        a.set(2, 3, 4, 2.0);
        a.set(1, 2, 3, 3.0);
        a.set(0, 3, 1, 4.0);
        a
    }

    #[test]
    fn set_get_remove() {
        let mut a = Sparse3D::new(2, 2, 2);
        a.set(1, 1, 1, 5.0);
        assert_eq!(a.get(1, 1, 1), 5.0);
        assert_eq!(a.get(0, 0, 0), 0.0);
        a.set(1, 1, 1, 0.0);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn ekmr_plane_shape_and_mapping() {
        let a = sample();
        let e = a.to_ekmr();
        assert_eq!(e.plane().rows(), 4);
        assert_eq!(e.plane().cols(), 15);
        // A[2][3][4] → plane (3, 4·3 + 2) = (3, 14).
        assert_eq!(e.plane().get(3, 14), 2.0);
        assert_eq!(e.plane_coords(2, 3, 4), (3, 14));
        assert_eq!(e.array_coords(3, 14), (2, 3, 4));
    }

    #[test]
    fn round_trip() {
        let a = sample();
        assert_eq!(a.to_ekmr().to_sparse(), a);
    }

    #[test]
    fn plane_coords_bijective() {
        let a = Sparse3D::new(3, 4, 5);
        let e = a.to_ekmr();
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let rc = e.plane_coords(i, j, k);
                    assert!(seen.insert(rc), "collision at {rc:?}");
                    assert_eq!(e.array_coords(rc.0, rc.1), (i, j, k));
                }
            }
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn distribute_over_plane_reassembles() {
        let a = sample();
        let e = a.to_ekmr();
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let part = RowBlock::new(4, 15, 4);
        for scheme in SchemeKind::ALL {
            let run = distribute3(scheme, &machine, &a, &part, CompressKind::Crs).unwrap();
            assert_eq!(run.reassemble(&part), *e.plane(), "{scheme}");
            assert_eq!(run.total_nnz(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_set_panics() {
        let mut a = Sparse3D::new(2, 2, 2);
        a.set(2, 0, 0, 1.0);
    }
}
