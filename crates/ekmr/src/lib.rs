#![warn(missing_docs)]

//! Extended Karnaugh Map Representation (EKMR) for multi-dimensional
//! sparse arrays.
//!
//! The paper's conclusion (§6) names its future work: "developing efficient
//! data distribution schemes for multi-dimensional sparse arrays based on
//! the extended Karnaugh map representation (EKMR) scheme" (Lin, Liu &
//! Chung, IEEE TC 2002). This crate implements that direction.
//!
//! The EKMR idea: a `d`-dimensional array is flattened to a *single* 2-D
//! plane by packing dimension pairs Karnaugh-map style, instead of the
//! traditional representation's nest of `d−2` levels of indirection:
//!
//! * **EKMR(3)**: `A[i][j][k]` (dims `n1 × n2 × n3`) maps to the plane
//!   `A'[j][k·n1 + i]` of shape `n2 × (n3·n1)`;
//! * **EKMR(4)**: `A[i][j][k][l]` maps to
//!   `A'[l·n2 + j][k·n1 + i]` of shape `(n4·n2) × (n3·n1)`.
//!
//! Once on the plane, everything in `sparsedist-core` applies unchanged
//! — and multi-dimensional operations become flat 2-D sweeps
//! ([`tensorops::ttv`]):
//! CRS/CCS compression of the plane, row/column/mesh partitions of the
//! plane, and the SFC/CFS/ED distribution schemes — giving multi-
//! dimensional sparse distribution for free. [`distribute3`] /
//! [`distribute4`] wrap that pipeline.

pub mod sparse3;
pub mod sparse4;
pub mod tensorops;

pub use sparse3::{distribute3, Ekmr3, Sparse3D};
pub use sparse4::{distribute4, Ekmr4, Sparse4D};
pub use tensorops::{ttv, Mode};
