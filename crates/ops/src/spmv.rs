//! Sparse matrix–vector products, local and distributed.

use sparsedist_core::compress::{Ccs, Crs, LocalCompressed};
use sparsedist_core::dense::Dense2D;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::partition::Partition;
use sparsedist_core::schemes::SchemeRun;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase, PhaseLedger};

/// `y = A·x` for a CRS array.
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn crs_spmv(a: &Crs, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        a.cols(),
        "x length {} != cols {}",
        x.len(),
        a.cols()
    );
    let mut y = vec![0.0; a.rows()];
    for (r, slot) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            acc += v * x[c];
        }
        *slot = acc;
    }
    y
}

/// `y = A·x` for a CCS array.
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn ccs_spmv(a: &Ccs, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        a.cols(),
        "x length {} != cols {}",
        x.len(),
        a.cols()
    );
    let mut y = vec![0.0; a.rows()];
    for (c, &xc) in x.iter().enumerate() {
        if xc == 0.0 {
            continue;
        }
        for (&r, &v) in a.col_rows(c).iter().zip(a.col_vals(c)) {
            y[r] += v * xc;
        }
    }
    y
}

/// Dense baseline `y = A·x` (the cost the compressed formats avoid).
///
/// # Panics
/// Panics if `x.len() != a.cols()`.
pub fn dense_spmv(a: &Dense2D, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        a.cols(),
        "x length {} != cols {}",
        x.len(),
        a.cols()
    );
    (0..a.rows())
        .map(|r| a.row(r).iter().zip(x).map(|(&v, &xv)| v * xv).sum())
        .collect()
}

/// `y = A·x` over the distributed local arrays left by a scheme run.
///
/// Each processor computes the partial products of its own nonzeros
/// against the (broadcast) input vector, mapping local coordinates back to
/// global ones via the partition; rank 0 reduces the partials into the
/// full result. Works for every partition method, block or cyclic.
///
/// Returns the global `y` on every rank (rank 0 computes it; everyone
/// receives the reduced copy).
///
/// # Errors
/// Propagates communication failures when a fault plan is installed.
///
/// # Panics
/// Panics if `x.len()` does not match the partition's global column count
/// or the machine size differs from the run's.
pub fn distributed_spmv(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    x: &[f64],
) -> Result<Vec<f64>, SparsedistError> {
    Ok(distributed_spmv_ledgers(machine, run, part, x)?.0)
}

/// [`distributed_spmv`] plus the per-rank phase ledgers of the product
/// itself (compute flops, reduce/broadcast wire time).
///
/// # Errors
/// Propagates communication failures when a fault plan is installed.
pub fn distributed_spmv_ledgers(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    x: &[f64],
) -> Result<(Vec<f64>, Vec<PhaseLedger>), SparsedistError> {
    let (grows, gcols) = part.global_shape();
    assert_eq!(
        x.len(),
        gcols,
        "x length {} != global cols {gcols}",
        x.len()
    );
    assert_eq!(
        machine.nprocs(),
        run.locals.len(),
        "machine size != run size"
    );

    let (results, ledgers) = machine.run_with_ledgers(|env| -> Result<Vec<f64>, SparsedistError> {
        let me = env.rank();
        // Local partial: iterate the local compressed array, map to global.
        let partial: Vec<f64> = env.phase(Phase::Compute, |env| {
            let mut y = vec![0.0; grows];
            let mut flops: u64 = 0;
            match &run.locals[me] {
                LocalCompressed::Crs(a) => {
                    for (lr, lc, v) in a.iter() {
                        let (gr, gc) = part.to_global(me, lr, lc);
                        y[gr] += v * x[gc];
                        flops += 2;
                    }
                }
                LocalCompressed::Ccs(a) => {
                    for (lr, lc, v) in a.iter() {
                        let (gr, gc) = part.to_global(me, lr, lc);
                        y[gr] += v * x[gc];
                        flops += 2;
                    }
                }
            }
            env.charge_ops(flops);
            y
        });

        // Reduce at rank 0.
        let mut buf = PackBuffer::with_capacity(grows);
        buf.push_f64_slice(&partial);
        env.phase(Phase::Send, |env| env.send(0, buf))?;
        let reduced = if me == 0 {
            let mut y = vec![0.0; grows];
            for src in 0..env.nprocs() {
                let msg = env.recv(src)?;
                let mut cursor = msg.payload.cursor();
                for slot in y.iter_mut() {
                    *slot += cursor.try_read_f64()?;
                }
            }
            env.charge_ops((grows * env.nprocs()) as u64);
            y
        } else {
            Vec::new()
        };

        // Broadcast the result back.
        if me == 0 {
            env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                for dst in 0..env.nprocs() {
                    let mut b = PackBuffer::with_capacity(grows);
                    b.push_f64_slice(&reduced);
                    env.send(dst, b)?;
                }
                Ok(())
            })?;
        }
        let msg = env.recv(0)?;
        Ok(msg.payload.cursor().try_read_f64_vec(grows)?)
    });
    let mut ys = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((ys.swap_remove(0), ledgers))
}

/// Row-conformal distributed `y = A·x` for row-family partitions on square
/// arrays — the scalable variant.
///
/// The general [`distributed_spmv`] reduces full-length partial vectors at
/// rank 0 and broadcasts the result, so the root's sends serialise
/// `O(p·n)` elements — a classic hotspot. Here each processor holds the
/// slice of `x` conformal with its rows, the slices are allgathered, each
/// processor computes exactly its own `y` rows (no reduction — every
/// global row has one owner), and rank 0 merely assembles the slices. No
/// rank ever ships more than `O(n + p)` messages' worth, so the *busiest*
/// processor's wire time drops by ≈ `p` for large `n` (the
/// `rowwise_ships_less_than_general` test pins this on the ledgers).
///
/// Returns the assembled global `y` (held by rank 0; callers wanting it
/// replicated can broadcast — the scalable pattern keeps `y` distributed).
///
/// # Errors
/// Propagates communication failures when a fault plan is installed.
///
/// # Panics
/// Panics if the partition splits columns (use the general version), the
/// array is not square, or sizes disagree.
pub fn distributed_spmv_rowwise(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    x: &[f64],
) -> Result<Vec<f64>, SparsedistError> {
    Ok(distributed_spmv_rowwise_ledgers(machine, run, part, x)?.0)
}

/// [`distributed_spmv_rowwise`] plus the per-rank ledgers.
///
/// # Errors
/// Propagates communication failures when a fault plan is installed.
pub fn distributed_spmv_rowwise_ledgers(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    x: &[f64],
) -> Result<(Vec<f64>, Vec<PhaseLedger>), SparsedistError> {
    let (grows, gcols) = part.global_shape();
    assert!(
        !part.splits_cols(),
        "row-conformal SpMV needs a row-family partition"
    );
    assert_eq!(grows, gcols, "row-conformal SpMV needs a square array");
    assert_eq!(
        x.len(),
        gcols,
        "x length {} != global cols {gcols}",
        x.len()
    );
    assert_eq!(
        machine.nprocs(),
        run.locals.len(),
        "machine size != run size"
    );

    let (results, ledgers) = machine.run_with_ledgers(|env| -> Result<Vec<f64>, SparsedistError> {
        let me = env.rank();
        let p = env.nprocs();
        let (lrows, _) = part.local_shape(me);

        // My conformal slice of x: entries at my global row indices.
        let my_slice: Vec<f64> = env.phase(Phase::Pack, |env| {
            let slice: Vec<f64> = (0..lrows)
                .map(|lr| x[part.to_global(me, lr, 0).0])
                .collect();
            env.charge_ops(lrows as u64);
            slice
        });

        // Allgather the slices.
        let mut buf = PackBuffer::with_capacity(my_slice.len());
        buf.push_f64_slice(&my_slice);
        env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
            for dst in 0..p {
                env.send(dst, buf.clone())?;
            }
            Ok(())
        })?;
        let mut x_full = vec![0.0; gcols];
        env.phase(Phase::Unpack, |env| -> Result<(), SparsedistError> {
            let mut ops = 0u64;
            for src in 0..p {
                let msg = env.recv(src)?;
                let mut cursor = msg.payload.cursor();
                let (src_rows, _) = part.local_shape(src);
                for lr in 0..src_rows {
                    let (gr, _) = part.to_global(src, lr, 0);
                    x_full[gr] = cursor.try_read_f64()?;
                    ops += 1;
                }
            }
            env.charge_ops(ops);
            Ok(())
        })?;

        // Compute exactly my rows of y.
        let y_mine: Vec<f64> = env.phase(Phase::Compute, |env| {
            let mut y = vec![0.0; lrows];
            let mut flops = 0u64;
            match &run.locals[me] {
                LocalCompressed::Crs(a) => {
                    for (lr, lc, v) in a.iter() {
                        let (_, gc) = part.to_global(me, lr, lc);
                        y[lr] += v * x_full[gc];
                        flops += 2;
                    }
                }
                LocalCompressed::Ccs(a) => {
                    for (lr, lc, v) in a.iter() {
                        let (_, gc) = part.to_global(me, lr, lc);
                        y[lr] += v * x_full[gc];
                        flops += 2;
                    }
                }
            }
            env.charge_ops(flops);
            y
        });

        // Assemble at rank 0 (no reduction — pure placement).
        let mut out = PackBuffer::with_capacity(y_mine.len());
        out.push_f64_slice(&y_mine);
        env.phase(Phase::Send, |env| env.send(0, out))?;
        if me == 0 {
            let mut y = vec![0.0; grows];
            for src in 0..p {
                let msg = env.recv(src)?;
                let mut cursor = msg.payload.cursor();
                let (src_rows, _) = part.local_shape(src);
                for lr in 0..src_rows {
                    let (gr, _) = part.to_global(src, lr, 0);
                    y[gr] = cursor.try_read_f64()?;
                }
            }
            env.charge_ops(grows as u64);
            Ok(y)
        } else {
            Ok(Vec::new())
        }
    });
    let mut ys = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((ys.swap_remove(0), ledgers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::compress::CompressKind;
    use sparsedist_core::dense::paper_array_a;
    use sparsedist_core::opcount::OpCounter;
    use sparsedist_core::partition::{ColCyclic, Mesh2D, RowBlock};
    use sparsedist_core::schemes::{run_scheme, SchemeKind};
    use sparsedist_multicomputer::MachineModel;

    fn x8() -> Vec<f64> {
        (1..=8).map(|v| v as f64).collect()
    }

    #[test]
    fn crs_ccs_dense_agree() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        let x = x8();
        let want = dense_spmv(&a, &x);
        assert_eq!(crs_spmv(&crs, &x), want);
        assert_eq!(ccs_spmv(&ccs, &x), want);
    }

    #[test]
    fn known_small_product() {
        let a = Dense2D::from_rows(&[&[1., 2.], &[0., 3.]]);
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(crs_spmv(&crs, &[10., 100.]), vec![210., 300.]);
    }

    #[test]
    fn distributed_matches_sequential_all_schemes() {
        let a = paper_array_a();
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let x = x8();
        let want = dense_spmv(&a, &x);
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(10, 8, 4)),
            Box::new(Mesh2D::new(10, 8, 2, 2)),
            Box::new(ColCyclic::new(10, 8, 4)),
        ];
        for part in &parts {
            for scheme in SchemeKind::ALL {
                for kind in [CompressKind::Crs, CompressKind::Ccs] {
                    let run = run_scheme(scheme, &machine, &a, part.as_ref(), kind).unwrap();
                    let y = distributed_spmv(&machine, &run, part.as_ref(), &x).unwrap();
                    let err: f64 = y
                        .iter()
                        .zip(&want)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    assert!(err < 1e-12, "{scheme} {kind} {}: err {err}", part.name());
                }
            }
        }
    }

    #[test]
    fn ccs_spmv_skips_zero_x_entries() {
        let a = paper_array_a();
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        let mut x = vec![0.0; 8];
        x[6] = 1.0; // only column 6 active: values 2@(1,6), 8@(6,6), 16@(9,6)
        let y = ccs_spmv(&ccs, &x);
        assert_eq!(y[1], 2.0);
        assert_eq!(y[6], 8.0);
        assert_eq!(y[9], 16.0);
        assert_eq!(y.iter().filter(|&&v| v != 0.0).count(), 3);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let _ = crs_spmv(&crs, &[1.0; 3]);
    }

    #[test]
    fn rowwise_matches_general_on_square_arrays() {
        use sparsedist_core::partition::{BalancedRows, RowCyclic};
        let mut a = Dense2D::zeros(24, 24);
        for i in 0..120 {
            a.set((i * 5) % 24, (i * 7 + i / 24) % 24, 1.0 + i as f64);
        }
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.3).sin()).collect();
        let want = dense_spmv(&a, &x);
        let parts: Vec<Box<dyn Partition>> = vec![
            Box::new(RowBlock::new(24, 24, 4)),
            Box::new(RowCyclic::new(24, 24, 4)),
            Box::new(BalancedRows::bin_packed(&a, 4)),
        ];
        for part in &parts {
            let run = run_scheme(
                SchemeKind::Ed,
                &machine,
                &a,
                part.as_ref(),
                CompressKind::Crs,
            )
            .unwrap();
            let general = distributed_spmv(&machine, &run, part.as_ref(), &x).unwrap();
            let rowwise = distributed_spmv_rowwise(&machine, &run, part.as_ref(), &x).unwrap();
            for ((u, v), w) in rowwise.iter().zip(&general).zip(&want) {
                assert!(
                    (u - v).abs() < 1e-12 && (u - w).abs() < 1e-12,
                    "{}",
                    part.name()
                );
            }
        }
    }

    #[test]
    fn rowwise_relieves_the_root_hotspot() {
        // The reduce-based version's rank 0 broadcasts p full-length
        // vectors (O(p·n) elements from one sender); the row-conformal
        // version spreads the traffic, so the *busiest* rank's send time
        // drops once n is large enough to dominate the startups.
        let n = 512;
        let p = 8;
        let mut a = Dense2D::zeros(n, n);
        for i in 0..(n * n / 10) {
            a.set((i * 7) % n, (i * 13 + i / n) % n, 1.0 + i as f64);
        }
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let part = RowBlock::new(n, n, p);
        let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
        let x = vec![1.0; n];
        let (yg, lg) = distributed_spmv_ledgers(&machine, &run, &part, &x).unwrap();
        let (yr, lr) = distributed_spmv_rowwise_ledgers(&machine, &run, &part, &x).unwrap();
        assert_eq!(yg, yr);
        let send_max = |ls: &[PhaseLedger]| -> f64 {
            ls.iter()
                .map(|l| l.get(Phase::Send).as_micros())
                .fold(0.0, f64::max)
        };
        assert!(
            send_max(&lr) < send_max(&lg),
            "rowwise max-send {} !< general max-send {}",
            send_max(&lr),
            send_max(&lg)
        );
    }

    #[test]
    #[should_panic(expected = "row-family")]
    fn rowwise_rejects_column_partitions() {
        use sparsedist_core::partition::ColBlock;
        let a = paper_array_a().block(0, 0, 8, 8);
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let part = ColBlock::new(8, 8, 4);
        let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
        let _ = distributed_spmv_rowwise(&machine, &run, &part, &[1.0; 8]);
    }
}
