//! Format conversion and transposition.
//!
//! A CRS array reinterpreted with rows↔columns swapped *is* the CCS form of
//! the transpose (and vice versa), so the two conversions here double as
//! transposition kernels. Both run in `O(nnz + dim)` with counting sort —
//! no intermediate dense array.

use sparsedist_core::compress::{Ccs, Crs};

/// Convert CRS → CCS of the *same* array (column-major re-bucketing).
pub fn crs_to_ccs(a: &Crs) -> Ccs {
    let mut counts = vec![0usize; a.cols() + 1];
    for &c in a.co() {
        counts[c + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let cp = counts.clone();
    let mut ri = vec![0usize; a.nnz()];
    let mut vl = vec![0.0f64; a.nnz()];
    let mut cursor = cp.clone();
    for (r, c, v) in a.iter() {
        let k = cursor[c];
        ri[k] = r;
        vl[k] = v;
        cursor[c] += 1;
    }
    Ccs::from_raw(a.rows(), a.cols(), cp, ri, vl).expect("counting sort preserves invariants")
}

/// Convert CCS → CRS of the same array.
pub fn ccs_to_crs(a: &Ccs) -> Crs {
    let mut counts = vec![0usize; a.rows() + 1];
    for &r in a.ri() {
        counts[r + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let ro = counts.clone();
    let mut co = vec![0usize; a.nnz()];
    let mut vl = vec![0.0f64; a.nnz()];
    let mut cursor = ro.clone();
    for (r, c, v) in a.iter() {
        let k = cursor[r];
        co[k] = c;
        vl[k] = v;
        cursor[r] += 1;
    }
    Crs::from_raw(a.rows(), a.cols(), ro, co, vl).expect("counting sort preserves invariants")
}

/// Transpose a CRS array (returns CRS of `Aᵀ`).
pub fn transpose(a: &Crs) -> Crs {
    // CRS(A) has the same payload as CCS(Aᵀ) with the roles of the arrays
    // swapped; re-bucket by column and flip the dimensions.
    let mut counts = vec![0usize; a.cols() + 1];
    for &c in a.co() {
        counts[c + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let ro = counts.clone();
    let mut co = vec![0usize; a.nnz()];
    let mut vl = vec![0.0f64; a.nnz()];
    let mut cursor = ro.clone();
    for (r, c, v) in a.iter() {
        let k = cursor[c];
        co[k] = r;
        vl[k] = v;
        cursor[c] += 1;
    }
    Crs::from_raw(a.cols(), a.rows(), ro, co, vl).expect("counting sort preserves invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::{paper_array_a, Dense2D};
    use sparsedist_core::opcount::OpCounter;

    #[test]
    fn crs_to_ccs_same_array() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let ccs = crs_to_ccs(&crs);
        assert_eq!(ccs, Ccs::from_dense(&a, &mut OpCounter::new()));
    }

    #[test]
    fn ccs_to_crs_same_array() {
        let a = paper_array_a();
        let ccs = Ccs::from_dense(&a, &mut OpCounter::new());
        let crs = ccs_to_crs(&ccs);
        assert_eq!(crs, Crs::from_dense(&a, &mut OpCounter::new()));
    }

    #[test]
    fn round_trip_is_identity() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(ccs_to_crs(&crs_to_ccs(&crs)), crs);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        let t = transpose(&crs);
        assert_eq!(t.rows(), 8);
        assert_eq!(t.cols(), 10);
        let mut want = Dense2D::zeros(8, 10);
        for (r, c, v) in a.iter_nonzero() {
            want.set(c, r, v);
        }
        assert_eq!(t.to_dense(), want);
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = paper_array_a();
        let crs = Crs::from_dense(&a, &mut OpCounter::new());
        assert_eq!(transpose(&transpose(&crs)), crs);
    }

    #[test]
    fn empty_array() {
        let crs = Crs::from_dense(&Dense2D::zeros(3, 5), &mut OpCounter::new());
        let t = transpose(&crs);
        assert_eq!((t.rows(), t.cols()), (5, 3));
        assert_eq!(t.nnz(), 0);
        assert_eq!(crs_to_ccs(&crs).nnz(), 0);
    }
}
