#![warn(missing_docs)]

//! Sparse array operations over distributed compressed arrays.
//!
//! The whole point of the paper's compression phase is that subsequent
//! sparse array operations run on `RO`/`CO`/`VL` rather than on dense
//! arrays ("a local sparse array is compressed … in order to obtain better
//! performance for sparse array operations", §1). This crate supplies
//! those downstream operations:
//!
//! * [`spmv`] — local CRS/CCS sparse matrix–vector products, a dense
//!   baseline, and a distributed SpMV that runs over a
//!   [`sparsedist_multicomputer::Multicomputer`] on the local arrays a
//!   scheme run leaves behind;
//! * [`elementwise`] — scaling, sparse addition, Frobenius norm;
//! * [`transpose`] — CRS↔CCS conversions (transposition in disguise);
//! * [`solve`] — Jacobi and conjugate-gradient solvers whose matrix-vector
//!   products run distributed;
//! * [`spgemm`] — Gustavson row-wise sparse matrix-matrix multiplication;
//! * [`distributed`] — operations on the distributed representation
//!   itself: scale, add, Frobenius norm (allreduce) and a no-gather
//!   distributed transpose.

pub mod distributed;
pub mod elementwise;
pub mod solve;
pub mod spgemm;
pub mod spmv;
pub mod transpose;
