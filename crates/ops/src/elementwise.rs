//! Elementwise kernels on compressed arrays.

use sparsedist_core::compress::Crs;

/// Scale every stored value: `A ← α·A`. Returns a new array; structure is
/// unchanged (scaling by zero keeps explicit zeros, matching sparse BLAS
/// convention).
pub fn scale(a: &Crs, alpha: f64) -> Crs {
    let vl: Vec<f64> = a.vl().iter().map(|&v| alpha * v).collect();
    Crs::from_raw(a.rows(), a.cols(), a.ro().to_vec(), a.co().to_vec(), vl)
        .expect("scaling preserves structure")
}

/// Sparse addition `C = A + B` by merging the row streams. Entries that
/// cancel to exactly 0.0 are dropped.
///
/// # Panics
/// Panics if the shapes differ.
pub fn add(a: &Crs, b: &Crs) -> Crs {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let mut ro = Vec::with_capacity(a.rows() + 1);
    let mut co = Vec::new();
    let mut vl = Vec::new();
    ro.push(0);
    for r in 0..a.rows() {
        let (ac, av) = (a.row_cols(r), a.row_vals(r));
        let (bc, bv) = (b.row_cols(r), b.row_vals(r));
        let (mut i, mut j) = (0, 0);
        while i < ac.len() || j < bc.len() {
            let (c, v) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                let out = (ac[i], av[i]);
                i += 1;
                out
            } else if i >= ac.len() || bc[j] < ac[i] {
                let out = (bc[j], bv[j]);
                j += 1;
                out
            } else {
                let out = (ac[i], av[i] + bv[j]);
                i += 1;
                j += 1;
                out
            };
            if v != 0.0 {
                co.push(c);
                vl.push(v);
            }
        }
        ro.push(co.len());
    }
    Crs::from_raw(a.rows(), a.cols(), ro, co, vl).expect("merge preserves ordering")
}

/// Frobenius norm `‖A‖_F = sqrt(Σ v²)`.
pub fn frobenius_norm(a: &Crs) -> f64 {
    a.vl().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Sum of all stored values.
pub fn sum(a: &Crs) -> f64 {
    a.vl().iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::{paper_array_a, Dense2D};
    use sparsedist_core::opcount::OpCounter;

    fn crs(a: &Dense2D) -> Crs {
        Crs::from_dense(a, &mut OpCounter::new())
    }

    #[test]
    fn scale_scales_values_only() {
        let a = crs(&paper_array_a());
        let b = scale(&a, 2.0);
        assert_eq!(b.ro(), a.ro());
        assert_eq!(b.co(), a.co());
        assert_eq!(b.vl()[0], 2.0);
        assert_eq!(b.vl()[15], 32.0);
    }

    #[test]
    fn add_disjoint_structures() {
        let a = crs(&Dense2D::from_rows(&[&[1., 0.], &[0., 0.]]));
        let b = crs(&Dense2D::from_rows(&[&[0., 2.], &[3., 0.]]));
        let c = add(&a, &b);
        assert_eq!(c.to_dense(), Dense2D::from_rows(&[&[1., 2.], &[3., 0.]]));
    }

    #[test]
    fn add_overlapping_structures() {
        let a = crs(&Dense2D::from_rows(&[&[1., 2.], &[0., 5.]]));
        let b = crs(&Dense2D::from_rows(&[&[10., 0.], &[0., 5.]]));
        let c = add(&a, &b);
        assert_eq!(c.to_dense(), Dense2D::from_rows(&[&[11., 2.], &[0., 10.]]));
    }

    #[test]
    fn add_cancellation_drops_entries() {
        let a = crs(&Dense2D::from_rows(&[&[1., 2.]]));
        let b = crs(&Dense2D::from_rows(&[&[-1., 0.]]));
        let c = add(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), 2.0);
    }

    #[test]
    fn add_matches_dense_addition() {
        let x = paper_array_a();
        let mut y = paper_array_a();
        y.set(0, 0, 100.0);
        y.set(0, 1, -1.0); // cancels x's 1.0
        let c = add(&crs(&x), &crs(&y));
        let mut want = Dense2D::zeros(10, 8);
        for r in 0..10 {
            for col in 0..8 {
                want.set(r, col, x.get(r, col) + y.get(r, col));
            }
        }
        assert_eq!(c.to_dense(), want);
    }

    #[test]
    fn frobenius_and_sum() {
        let a = crs(&Dense2D::from_rows(&[&[3., 0.], &[0., 4.]]));
        assert_eq!(frobenius_norm(&a), 5.0);
        assert_eq!(sum(&a), 7.0);
    }
}
