//! Sparse operations that act **on the distributed representation** —
//! no gather, no dense intermediate. Everything here takes the
//! per-processor [`LocalCompressed`] arrays a scheme run (or a previous
//! distributed op) produced and returns new per-processor arrays.

use crate::elementwise;
use sparsedist_core::compress::{Ccs, CompressKind, Crs, LocalCompressed};
use sparsedist_core::error::SparsedistError;
use sparsedist_core::partition::Partition;
use sparsedist_multicomputer::{Multicomputer, PackBuffer, Phase, PhaseLedger};

/// Scale every processor's local array in place-ish (returns new locals):
/// `A ← α·A`. Purely local — no communication at all.
pub fn distributed_scale(
    machine: &Multicomputer,
    locals: &[LocalCompressed],
    alpha: f64,
) -> Vec<LocalCompressed> {
    assert_eq!(machine.nprocs(), locals.len(), "machine size != locals");
    machine.run(|env| {
        let me = env.rank();
        env.phase(Phase::Compute, |env| {
            let out = match &locals[me] {
                LocalCompressed::Crs(a) => LocalCompressed::Crs(elementwise::scale(a, alpha)),
                LocalCompressed::Ccs(a) => {
                    // Scale values directly; structure unchanged.
                    let vl: Vec<f64> = a.vl().iter().map(|&v| alpha * v).collect();
                    LocalCompressed::Ccs(
                        Ccs::from_raw(a.rows(), a.cols(), a.cp().to_vec(), a.ri().to_vec(), vl)
                            .expect("scaling preserves structure"),
                    )
                }
            };
            env.charge_ops(locals[me].nnz() as u64);
            out
        })
    })
}

/// Elementwise sum `C = A + B` of two arrays distributed under the *same*
/// partition with CRS locals. Purely local merges.
///
/// # Panics
/// Panics if sizes disagree or any local array is not CRS.
pub fn distributed_add(
    machine: &Multicomputer,
    a: &[LocalCompressed],
    b: &[LocalCompressed],
) -> Vec<LocalCompressed> {
    assert_eq!(machine.nprocs(), a.len(), "machine size != a");
    assert_eq!(a.len(), b.len(), "operand processor counts differ");
    machine.run(|env| {
        let me = env.rank();
        env.phase(Phase::Compute, |env| {
            let (x, y) = (a[me].as_crs(), b[me].as_crs());
            let sum = elementwise::add(x, y);
            env.charge_ops((x.nnz() + y.nnz()) as u64);
            LocalCompressed::Crs(sum)
        })
    })
}

/// Frobenius norm of the whole distributed array: local partials combined
/// with an allreduce ([`sparsedist_multicomputer::collectives::allreduce_sum`]).
///
/// # Errors
/// Propagates communication failures from the allreduce when a fault plan
/// is installed.
pub fn distributed_frobenius(
    machine: &Multicomputer,
    locals: &[LocalCompressed],
) -> Result<f64, SparsedistError> {
    assert_eq!(machine.nprocs(), locals.len(), "machine size != locals");
    let results = machine.run(|env| -> Result<f64, SparsedistError> {
        let me = env.rank();
        let partial: f64 = env.phase(Phase::Compute, |env| {
            env.charge_ops(locals[me].nnz() as u64);
            match &locals[me] {
                LocalCompressed::Crs(a) => a.vl().iter().map(|v| v * v).sum(),
                LocalCompressed::Ccs(a) => a.vl().iter().map(|v| v * v).sum(),
            }
        });
        let total = env.phase(Phase::Send, |env| {
            sparsedist_multicomputer::collectives::allreduce_sum(env, &[partial])
        })?;
        Ok(total[0].sqrt())
    });
    results.into_iter().next().expect("at least one rank")
}

/// Distributed transpose: re-own `Aᵀ` under the target partition without
/// gathering. Every processor flips its local triplets to transposed
/// global coordinates, buckets them by their new owner, and the machine
/// does a compressed all-to-all; receivers rebuild local CRS/CCS.
///
/// Returns `(new locals of Aᵀ, per-rank ledgers)`.
///
/// # Errors
/// Propagates communication and unpack failures when a fault plan is
/// installed.
///
/// # Panics
/// Panics if the target partition's shape is not the transpose of the
/// source's, or processor counts disagree.
pub fn distributed_transpose(
    machine: &Multicomputer,
    locals: &[LocalCompressed],
    from: &dyn Partition,
    to: &dyn Partition,
    kind: CompressKind,
) -> Result<(Vec<LocalCompressed>, Vec<PhaseLedger>), SparsedistError> {
    let p = machine.nprocs();
    assert_eq!(from.nparts(), p, "source partition size");
    assert_eq!(to.nparts(), p, "target partition size");
    let (fr, fc) = from.global_shape();
    let (tr, tc) = to.global_shape();
    assert_eq!(
        (fr, fc),
        (tc, tr),
        "target must describe the transposed shape"
    );
    assert_eq!(locals.len(), p, "one local array per processor");

    let (results, ledgers) =
        machine.run_with_ledgers(|env| -> Result<LocalCompressed, SparsedistError> {
            let me = env.rank();
            // Bucket transposed triplets by new owner.
            let buckets: Vec<Vec<(usize, usize, f64)>> = env.phase(Phase::Pack, |env| {
                let mut buckets: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); p];
                let mut ops = 0u64;
                let mut push = |lr: usize, lc: usize, v: f64, ops: &mut u64| {
                    let (gr, gc) = from.to_global(me, lr, lc);
                    let dest = to.owner_of(gc, gr); // transposed coordinates
                    *ops += 2;
                    buckets[dest].push((gc, gr, v));
                };
                match &locals[me] {
                    LocalCompressed::Crs(a) => {
                        for (lr, lc, v) in a.iter() {
                            push(lr, lc, v, &mut ops);
                        }
                    }
                    LocalCompressed::Ccs(a) => {
                        for (lr, lc, v) in a.iter() {
                            push(lr, lc, v, &mut ops);
                        }
                    }
                }
                env.charge_ops(ops);
                buckets
            });

            // All-to-all.
            let bufs: Vec<PackBuffer> = env.phase(Phase::Pack, |env| {
                let mut ops = 0u64;
                let bufs = buckets
                    .iter()
                    .map(|b| {
                        let mut buf = PackBuffer::with_capacity(1 + b.len() * 3);
                        buf.push_u64(b.len() as u64);
                        for &(r, c, v) in b {
                            buf.push_u64(r as u64);
                            buf.push_u64(c as u64);
                            buf.push_f64(v);
                            ops += 3;
                        }
                        buf
                    })
                    .collect();
                env.charge_ops(ops);
                bufs
            });
            env.phase(Phase::Send, |env| -> Result<(), SparsedistError> {
                for (dst, buf) in bufs.into_iter().enumerate() {
                    env.send(dst, buf)?;
                }
                Ok(())
            })?;

            let mut trips: Vec<(usize, usize, f64)> = Vec::new();
            env.phase(Phase::Unpack, |env| -> Result<(), SparsedistError> {
                let mut ops = 0u64;
                for src in 0..p {
                    let msg = env.recv(src)?;
                    let mut cursor = msg.payload.cursor();
                    let n = cursor.try_read_usize()?;
                    for _ in 0..n {
                        let r = cursor.try_read_usize()?;
                        let c = cursor.try_read_usize()?;
                        let v = cursor.try_read_f64()?;
                        ops += 3;
                        let (_, lr, lc) = to.to_local(r, c);
                        trips.push((lr, lc, v));
                    }
                }
                env.charge_ops(ops);
                Ok(())
            })?;

            Ok(env.phase(Phase::Compress, |env| {
                let mut ops = sparsedist_core::opcount::OpCounter::new();
                let (lrows, lcols) = to.local_shape(me);
                let out = match kind {
                    CompressKind::Crs => {
                        LocalCompressed::Crs(Crs::from_triplets(lrows, lcols, &trips, &mut ops))
                    }
                    CompressKind::Ccs => {
                        LocalCompressed::Ccs(Ccs::from_triplets(lrows, lcols, &trips, &mut ops))
                    }
                };
                env.charge_ops(ops.take());
                out
            }))
        });
    let locals = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((locals, ledgers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::paper_array_a;
    use sparsedist_core::partition::{ColBlock, Mesh2D, RowBlock};
    use sparsedist_core::schemes::{run_scheme, SchemeKind, SchemeRun};
    use sparsedist_multicomputer::MachineModel;

    fn machine(p: usize) -> Multicomputer {
        Multicomputer::virtual_machine(p, MachineModel::ibm_sp2())
    }

    fn distribute(kind: CompressKind) -> (SchemeRun, RowBlock) {
        let a = paper_array_a();
        let part = RowBlock::new(10, 8, 4);
        (
            run_scheme(SchemeKind::Ed, &machine(4), &a, &part, kind).unwrap(),
            part,
        )
    }

    #[test]
    fn scale_scales_every_local() {
        let (run, part) = distribute(CompressKind::Crs);
        let scaled = distributed_scale(&machine(4), &run.locals, 3.0);
        let rebuilt = SchemeRun {
            locals: scaled,
            ..run.clone()
        };
        let d = rebuilt.reassemble(&part);
        for (r, c, v) in paper_array_a().iter_nonzero() {
            assert_eq!(d.get(r, c), 3.0 * v);
        }
    }

    #[test]
    fn scale_works_on_ccs_locals() {
        let (run, part) = distribute(CompressKind::Ccs);
        let scaled = distributed_scale(&machine(4), &run.locals, -1.0);
        let rebuilt = SchemeRun {
            locals: scaled,
            ..run.clone()
        };
        assert_eq!(rebuilt.reassemble(&part).get(2, 0), -3.0);
    }

    #[test]
    fn add_combines_distributions() {
        let (run, part) = distribute(CompressKind::Crs);
        let doubled = distributed_add(&machine(4), &run.locals, &run.locals);
        let rebuilt = SchemeRun {
            locals: doubled,
            ..run.clone()
        };
        let d = rebuilt.reassemble(&part);
        for (r, c, v) in paper_array_a().iter_nonzero() {
            assert_eq!(d.get(r, c), 2.0 * v);
        }
    }

    #[test]
    fn frobenius_matches_sequential() {
        let (run, _) = distribute(CompressKind::Crs);
        let got = distributed_frobenius(&machine(4), &run.locals).unwrap();
        let want: f64 = (1..=16).map(|v| (v * v) as f64).sum::<f64>().sqrt();
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let a = paper_array_a(); // 10×8
        let from = RowBlock::new(10, 8, 4);
        let run = run_scheme(SchemeKind::Cfs, &machine(4), &a, &from, CompressKind::Crs).unwrap();
        // Aᵀ is 8×10; own it under a column partition of the transposed
        // shape.
        let to = ColBlock::new(8, 10, 4);
        let (tlocals, _) =
            distributed_transpose(&machine(4), &run.locals, &from, &to, CompressKind::Crs).unwrap();
        let trun = SchemeRun {
            locals: tlocals,
            ..run.clone()
        };
        let t = trun.reassemble(&to);
        assert_eq!((t.rows(), t.cols()), (8, 10));
        for (r, c, v) in a.iter_nonzero() {
            assert_eq!(t.get(c, r), v);
        }
        assert_eq!(t.nnz(), 16);
    }

    #[test]
    fn double_transpose_is_identity() {
        let a = paper_array_a();
        let from = RowBlock::new(10, 8, 4);
        let mid = Mesh2D::new(8, 10, 2, 2);
        let run = run_scheme(SchemeKind::Ed, &machine(4), &a, &from, CompressKind::Crs).unwrap();
        let (t1, _) =
            distributed_transpose(&machine(4), &run.locals, &from, &mid, CompressKind::Crs)
                .unwrap();
        let (t2, _) =
            distributed_transpose(&machine(4), &t1, &mid, &from, CompressKind::Crs).unwrap();
        assert_eq!(t2, run.locals);
    }

    #[test]
    #[should_panic(expected = "transposed shape")]
    fn transpose_rejects_untransposed_target() {
        let (run, from) = distribute(CompressKind::Crs);
        let to = RowBlock::new(10, 8, 4);
        let _ = distributed_transpose(&machine(4), &run.locals, &from, &to, CompressKind::Crs);
    }
}
