//! Sparse matrix–matrix multiplication (SpGEMM) on CRS arrays.
//!
//! Gustavson's row-wise algorithm with a dense accumulator: for each row
//! `i` of `A`, accumulate `A[i,k] · B[k,·]` into a scattered workspace,
//! then harvest the touched columns in sorted order. `O(flops + rows·?)`
//! with no intermediate dense matrix.

use sparsedist_core::compress::Crs;

/// `C = A · B` for CRS operands.
///
/// Entries that cancel to exactly 0.0 are dropped (consistent with the
/// `v != 0.0` storage convention used across the workspace).
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn spgemm(a: &Crs, b: &Crs) -> Crs {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let n = b.cols();
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();

    let mut ro = Vec::with_capacity(a.rows() + 1);
    let mut co = Vec::new();
    let mut vl = Vec::new();
    ro.push(0);
    for i in 0..a.rows() {
        touched.clear();
        for (&k, &av) in a.row_cols(i).iter().zip(a.row_vals(i)) {
            for (&j, &bv) in b.row_cols(k).iter().zip(b.row_vals(k)) {
                if acc[j] == 0.0 && !touched.contains(&j) {
                    touched.push(j);
                }
                acc[j] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let v = acc[j];
            acc[j] = 0.0;
            if v != 0.0 {
                co.push(j);
                vl.push(v);
            }
        }
        ro.push(co.len());
    }
    Crs::from_raw(a.rows(), n, ro, co, vl).expect("gustavson emits sorted rows")
}

/// `C = A · Aᵀ` convenience (Gram-like products in graph/FEM pipelines).
pub fn spgemm_aat(a: &Crs) -> Crs {
    spgemm(a, &crate::transpose::transpose(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsedist_core::dense::{paper_array_a, Dense2D};
    use sparsedist_core::opcount::OpCounter;

    fn crs(a: &Dense2D) -> Crs {
        Crs::from_dense(a, &mut OpCounter::new())
    }

    fn dense_mul(a: &Dense2D, b: &Dense2D) -> Dense2D {
        let mut c = Dense2D::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = crs(&Dense2D::from_rows(&[&[1., 2.], &[0., 3.]]));
        let b = crs(&Dense2D::from_rows(&[&[4., 0.], &[5., 6.]]));
        let c = spgemm(&a, &b);
        assert_eq!(
            c.to_dense(),
            Dense2D::from_rows(&[&[14., 12.], &[15., 18.]])
        );
    }

    #[test]
    fn matches_dense_on_paper_array() {
        let a = paper_array_a(); // 10×8
        let at = {
            let mut t = Dense2D::zeros(8, 10);
            for (r, c, v) in a.iter_nonzero() {
                t.set(c, r, v);
            }
            t
        };
        let c = spgemm(&crs(&a), &crs(&at));
        assert_eq!(c.to_dense(), dense_mul(&a, &at));
        assert_eq!(spgemm_aat(&crs(&a)).to_dense(), dense_mul(&a, &at));
    }

    #[test]
    fn identity_is_neutral() {
        let a = paper_array_a();
        let mut eye = Dense2D::zeros(8, 8);
        for i in 0..8 {
            eye.set(i, i, 1.0);
        }
        let c = spgemm(&crs(&a), &crs(&eye));
        assert_eq!(c.to_dense(), a);
    }

    #[test]
    fn cancellation_is_dropped() {
        // A row that hits +1 and −1 on the same output column.
        let a = crs(&Dense2D::from_rows(&[&[1., 1.]]));
        let b = crs(&Dense2D::from_rows(&[&[1., 2.], &[-1., 0.]]));
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 1), 2.0);
    }

    #[test]
    fn zero_operands() {
        let z = crs(&Dense2D::zeros(3, 4));
        let b = crs(&Dense2D::zeros(4, 2));
        let c = spgemm(&z, &b);
        assert_eq!(c.nnz(), 0);
        assert_eq!((c.rows(), c.cols()), (3, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_rejected() {
        let a = crs(&Dense2D::zeros(3, 4));
        let b = crs(&Dense2D::zeros(3, 4));
        let _ = spgemm(&a, &b);
    }
}
