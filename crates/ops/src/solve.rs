//! Iterative solvers over distributed sparse arrays.
//!
//! The point of distributing a sparse system (paper §1: finite-element
//! methods, climate modeling) is to *solve* it afterwards. These solvers
//! drive [`crate::spmv::distributed_spmv`], so every matrix–vector product
//! runs on the compressed local arrays a scheme run left behind, with its
//! communication charged to the machine's ledgers.

use crate::spmv::distributed_spmv;
use sparsedist_core::error::SparsedistError;
use sparsedist_core::partition::Partition;
use sparsedist_core::schemes::SchemeRun;
use sparsedist_multicomputer::Multicomputer;

/// Why a solver stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stop {
    /// Residual norm fell below the tolerance after this many iterations.
    Converged(usize),
    /// Iteration limit reached; the final residual norm is reported.
    MaxIters(f64),
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The (approximate) solution vector.
    pub x: Vec<f64>,
    /// Termination reason.
    pub stop: Stop,
    /// Final residual 2-norm `‖b − A·x‖₂`.
    pub residual: f64,
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Jacobi iteration `x ← x + D⁻¹(b − A·x)` on the distributed array.
///
/// # Errors
/// Propagates communication failures from the distributed products when a
/// fault plan is installed.
///
/// # Panics
/// Panics if the array is not square, `b` has the wrong length, or a
/// diagonal entry is zero.
pub fn jacobi(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    diag: &[f64],
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<Solution, SparsedistError> {
    let (grows, gcols) = part.global_shape();
    assert_eq!(grows, gcols, "jacobi needs a square system");
    assert_eq!(b.len(), grows, "b length {} != {grows}", b.len());
    assert_eq!(diag.len(), grows, "diag length {} != {grows}", diag.len());
    assert!(diag.iter().all(|&d| d != 0.0), "zero diagonal entry");

    let mut x = vec![0.0; grows];
    for it in 0..max_iters {
        let ax = distributed_spmv(machine, run, part, &x)?;
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, yi)| bi - yi).collect();
        let rn = norm2(&r);
        if rn <= tol {
            return Ok(Solution {
                x,
                stop: Stop::Converged(it),
                residual: rn,
            });
        }
        for i in 0..grows {
            x[i] += r[i] / diag[i];
        }
    }
    let ax = distributed_spmv(machine, run, part, &x)?;
    let rn = norm2(
        &b.iter()
            .zip(&ax)
            .map(|(bi, yi)| bi - yi)
            .collect::<Vec<_>>(),
    );
    Ok(Solution {
        x,
        stop: Stop::MaxIters(rn),
        residual: rn,
    })
}

/// Conjugate gradient for symmetric positive-definite systems, with every
/// `A·p` product running distributed.
///
/// # Errors
/// Propagates communication failures from the distributed products when a
/// fault plan is installed.
///
/// # Panics
/// Panics if the array is not square or `b` has the wrong length.
pub fn conjugate_gradient(
    machine: &Multicomputer,
    run: &SchemeRun,
    part: &dyn Partition,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<Solution, SparsedistError> {
    let (grows, gcols) = part.global_shape();
    assert_eq!(grows, gcols, "cg needs a square system");
    assert_eq!(b.len(), grows, "b length {} != {grows}", b.len());

    let mut x = vec![0.0; grows];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rr = dot(&r, &r);
    if rr.sqrt() <= tol {
        return Ok(Solution {
            x,
            stop: Stop::Converged(0),
            residual: rr.sqrt(),
        });
    }
    for it in 0..max_iters {
        let ap = distributed_spmv(machine, run, part, &p)?;
        let pap = dot(&p, &ap);
        assert!(pap > 0.0, "matrix is not positive definite (p·Ap = {pap})");
        let alpha = rr / pap;
        for i in 0..grows {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_next = dot(&r, &r);
        if rr_next.sqrt() <= tol {
            return Ok(Solution {
                x,
                stop: Stop::Converged(it + 1),
                residual: rr_next.sqrt(),
            });
        }
        let beta = rr_next / rr;
        for i in 0..grows {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_next;
    }
    Ok(Solution {
        x,
        stop: Stop::MaxIters(rr.sqrt()),
        residual: rr.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::dense_spmv;
    use sparsedist_core::compress::CompressKind;
    use sparsedist_core::partition::{Mesh2D, RowBlock};
    use sparsedist_core::schemes::{run_scheme, SchemeKind};
    use sparsedist_gen::patterns::five_point_laplacian;
    use sparsedist_multicomputer::MachineModel;

    fn setup(
        k: usize,
        p: usize,
    ) -> (
        Multicomputer,
        SchemeRun,
        RowBlock,
        sparsedist_core::dense::Dense2D,
    ) {
        let a = five_point_laplacian(k);
        let n = a.rows();
        let machine = Multicomputer::virtual_machine(p, MachineModel::ibm_sp2());
        let part = RowBlock::new(n, n, p);
        let run = run_scheme(SchemeKind::Ed, &machine, &a, &part, CompressKind::Crs).unwrap();
        (machine, run, part, a)
    }

    #[test]
    fn cg_solves_laplacian() {
        let (machine, run, part, a) = setup(8, 4); // 64×64 SPD system
        let n = a.rows();
        let b = vec![1.0; n];
        let sol = conjugate_gradient(&machine, &run, &part, &b, 1e-10, 500).unwrap();
        assert!(matches!(sol.stop, Stop::Converged(_)), "{:?}", sol.stop);
        // Verify against a dense residual.
        let ax = dense_spmv(&a, &sol.x);
        let rn = ax
            .iter()
            .zip(&b)
            .map(|(y, bi)| (y - bi).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(rn < 1e-8, "residual {rn}");
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations() {
        let (machine, run, part, a) = setup(5, 4); // 25×25
        let b: Vec<f64> = (0..a.rows()).map(|i| (i % 3) as f64).collect();
        let sol = conjugate_gradient(&machine, &run, &part, &b, 1e-12, a.rows() + 1).unwrap();
        match sol.stop {
            Stop::Converged(it) => assert!(it <= a.rows(), "took {it}"),
            other => panic!("did not converge: {other:?}"),
        }
    }

    #[test]
    fn jacobi_solves_diagonally_dominant() {
        let (machine, run, part, a) = setup(6, 4);
        let n = a.rows();
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let b = vec![0.5; n];
        let sol = jacobi(&machine, &run, &part, &diag, &b, 1e-8, 5000).unwrap();
        assert!(matches!(sol.stop, Stop::Converged(_)), "{:?}", sol.stop);
        assert!(sol.residual < 1e-8);
    }

    #[test]
    fn cg_and_jacobi_agree() {
        let (machine, run, part, a) = setup(6, 4);
        let n = a.rows();
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let cg = conjugate_gradient(&machine, &run, &part, &b, 1e-11, 1000).unwrap();
        let ja = jacobi(&machine, &run, &part, &diag, &b, 1e-11, 20000).unwrap();
        let diff =
            cg.x.iter()
                .zip(&ja.x)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0f64, f64::max);
        assert!(diff < 1e-7, "solvers disagree by {diff}");
    }

    #[test]
    fn solve_works_under_mesh_partition() {
        let a = five_point_laplacian(6);
        let n = a.rows();
        let machine = Multicomputer::virtual_machine(4, MachineModel::ibm_sp2());
        let part = Mesh2D::new(n, n, 2, 2);
        let run = run_scheme(SchemeKind::Cfs, &machine, &a, &part, CompressKind::Ccs).unwrap();
        let b = vec![1.0; n];
        let sol = conjugate_gradient(&machine, &run, &part, &b, 1e-10, 500).unwrap();
        assert!(matches!(sol.stop, Stop::Converged(_)));
    }

    #[test]
    fn max_iters_reports_residual() {
        let (machine, run, part, _) = setup(8, 4);
        let b = vec![1.0; 64];
        let sol = conjugate_gradient(&machine, &run, &part, &b, 1e-30, 2).unwrap();
        assert!(matches!(sol.stop, Stop::MaxIters(_)));
        assert!(sol.residual > 0.0);
    }
}
